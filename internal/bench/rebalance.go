package bench

import (
	"encoding/json"
	"fmt"
	"sort"
	"testing"
	"time"

	"repro/internal/blob"
	"repro/internal/cluster"
	"repro/internal/storage"
)

// The rebalance experiment measures what elasticity costs the foreground:
// the p99 virtual latency of a mixed read / 2PC-write workload while a
// node joins or drains, against the same workload on a quiesced ring. The
// cluster is 6 nodes with 5 serving — node 5 is the spare that every
// join/leave cycle adds and removes — over a population of multi-chunk
// blobs large enough that a membership change moves many batches.
const (
	rebalanceBlobs     = 24
	rebalanceChunkSize = 4 << 10
	rebalanceBlobSize  = 3 * rebalanceChunkSize
	rebalanceForeOps   = 96 // foreground ops per quiesced measurement
	rebalanceOpsPerCut = 4  // foreground ops interleaved per batch boundary
)

// RebalanceFixture backs the benchsuite `rebalance` experiment.
type RebalanceFixture struct {
	store *blob.Store
	ctx   *storage.Context
	buf   []byte
}

// newRebalanceFixture builds the 6-node store (5 serving) and seeds the
// blob population. hook, when non-nil, is installed as the migration
// batch-boundary callback before the store is built.
func newRebalanceFixture(hook func(int)) (*RebalanceFixture, error) {
	st := blob.NewOnNodes(cluster.New(cluster.Config{Nodes: 6, Seed: 11}),
		blob.Config{
			ChunkSize:            rebalanceChunkSize,
			Replication:          3,
			WALLanes:             4,
			InlineFanout:         true,
			MigrationBatchChunks: 8,
			MigrationBatchHook:   hook,
		},
		[]cluster.NodeID{0, 1, 2, 3, 4})
	ctx := storage.NewContext()
	buf := make([]byte, rebalanceBlobSize)
	for i := range buf {
		buf[i] = byte(i * 7)
	}
	for b := 0; b < rebalanceBlobs; b++ {
		key := fmt.Sprintf("re-blob-%02d", b)
		if err := st.CreateBlob(ctx, key); err != nil {
			return nil, err
		}
		if _, err := st.WriteBlob(ctx, key, 0, buf); err != nil {
			return nil, err
		}
	}
	return &RebalanceFixture{store: st, ctx: ctx, buf: buf}, nil
}

// foregroundOp runs one op of the deterministic foreground mix on its own
// virtual clock and returns the op's simulated duration. Two of every
// three ops are chunk-spanning writes — the prepared (2PC) path — and the
// third is a full-blob read, so both the member gate and the checked read
// path are on the measured path.
func (f *RebalanceFixture) foregroundOp(ctx *storage.Context, i int) (time.Duration, error) {
	key := fmt.Sprintf("re-blob-%02d", i%rebalanceBlobs)
	start := ctx.Clock.Now()
	if i%3 == 2 {
		dst := make([]byte, rebalanceBlobSize)
		if _, err := f.store.ReadBlob(ctx, key, 0, dst); err != nil {
			return 0, err
		}
	} else {
		// Spans the chunk 0/1 boundary: prepare on both participants,
		// then commit — the live 2PC load the gate is about.
		off := int64(rebalanceChunkSize/2 + (i%2)*512)
		if _, err := f.store.WriteBlob(ctx, key, off, f.buf[:rebalanceChunkSize]); err != nil {
			return 0, err
		}
	}
	return ctx.Clock.Now() - start, nil
}

// p99 returns the 99th-percentile sample. The slice is consumed (sorted).
func p99(samples []time.Duration) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	idx := len(samples) * 99 / 100
	if idx >= len(samples) {
		idx = len(samples) - 1
	}
	return samples[idx]
}

// VirtualRebalanceP99 measures the three gated numbers on one fresh
// fixture: the foreground p99 on the quiesced 5-node ring, then during a
// live join (AddServer 5) and a live drain (RemoveServer 5), with
// rebalanceOpsPerCut foreground ops interleaved at every migration batch
// boundary via the batch hook. Everything runs on the virtual clock over
// a seeded, single-threaded schedule, so the numbers are identical on
// every host — what makes the ratio gateable.
func VirtualRebalanceP99() (quiesced, join, leave time.Duration, err error) {
	var f *RebalanceFixture
	var wctx *storage.Context
	var during []time.Duration
	opSeq := 0
	hook := func(batch int) {
		if f == nil {
			return
		}
		for k := 0; k < rebalanceOpsPerCut; k++ {
			d, opErr := f.foregroundOp(wctx, opSeq)
			opSeq++
			if opErr != nil {
				err = opErr
				return
			}
			during = append(during, d)
		}
	}
	if f, err = newRebalanceFixture(hook); err != nil {
		return 0, 0, 0, err
	}
	wctx = storage.NewContext()
	// One throwaway op syncs the fresh clock with the fixture's seeded
	// construction history (same reasoning as VirtualWriteCost).
	if _, err = f.foregroundOp(wctx, 0); err != nil {
		return 0, 0, 0, err
	}

	quiet := make([]time.Duration, 0, rebalanceForeOps)
	for i := 0; i < rebalanceForeOps; i++ {
		d, opErr := f.foregroundOp(wctx, opSeq)
		opSeq++
		if opErr != nil {
			return 0, 0, 0, opErr
		}
		quiet = append(quiet, d)
	}
	quiesced = p99(quiet)

	during = during[:0]
	if jerr := f.store.AddServer(f.ctx, 5); jerr != nil {
		return 0, 0, 0, jerr
	}
	if err != nil { // an interleaved foreground op failed
		return 0, 0, 0, err
	}
	join = p99(during)

	during = during[:0]
	if lerr := f.store.RemoveServer(f.ctx, 5); lerr != nil {
		return 0, 0, 0, lerr
	}
	if err != nil {
		return 0, 0, 0, err
	}
	leave = p99(during)
	return quiesced, join, leave, nil
}

// RunRebalance runs the elasticity sweep and returns results for
// BENCH_rebalance.json: BenchmarkRebalanceCycle (wall-clock ns per full
// join+drain round trip of the spare node, best-of-3, the host-dependent
// FYI) plus the three deterministic virtual rows the gate reads —
// BenchmarkRebalanceForeground/{quiesced,join,leave}/virtual, each
// carrying a foreground p99 in NsPerOp.
func RunRebalance() ([]HotPathResult, error) {
	f, err := newRebalanceFixture(nil)
	if err != nil {
		return nil, err
	}
	var out []HotPathResult
	var best testing.BenchmarkResult
	for rep := 0; rep < 3; rep++ {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := f.store.AddServer(f.ctx, 5); err != nil {
					b.Fatal(err)
				}
				if err := f.store.RemoveServer(f.ctx, 5); err != nil {
					b.Fatal(err)
				}
			}
		})
		if rep == 0 || (r.N > 0 && r.NsPerOp() < best.NsPerOp()) {
			best = r
		}
	}
	if best.N == 0 {
		return nil, fmt.Errorf("bench: rebalance cycle benchmark failed")
	}
	out = append(out, HotPathResult{
		Name:        "BenchmarkRebalanceCycle",
		NsPerOp:     best.NsPerOp(),
		AllocsPerOp: best.AllocsPerOp(),
		BytesPerOp:  best.AllocedBytesPerOp(),
	})

	quiesced, join, leave, err := VirtualRebalanceP99()
	if err != nil {
		return nil, err
	}
	for _, row := range []struct {
		name string
		v    time.Duration
	}{
		{"BenchmarkRebalanceForeground/quiesced/virtual", quiesced},
		{"BenchmarkRebalanceForeground/join/virtual", join},
		{"BenchmarkRebalanceForeground/leave/virtual", leave},
	} {
		out = append(out, HotPathResult{Name: row.name, NsPerOp: int64(row.v)})
	}
	return out, nil
}

// CheckRebalance gates the elasticity cost: the foreground p99 during a
// live join or drain (the /virtual rows) must stay within maxRatio of the
// quiesced p99. A migrating batch and a foreground op do contend for the
// same simulated disks, so some elevation is physical — the batch bounds
// (MigrationBatchChunks/Bytes) and the token-bucket throttle are exactly
// the mechanisms that keep it a small constant instead of a stall, and
// this gate is what pins them. Today the measured elevation is ~3x for a
// join and ~2.6x for a drain (a foreground op landing right behind a
// batch queues behind up to MigrationBatchChunks chunk writes on the
// shared disks); the default of 4 gives those deterministic numbers
// headroom for legitimate cost shifts while still failing the
// regressions the gate exists for: an unthrottled sweep or a batch that
// holds the member gate across its copies, which shows up as an
// order-of-magnitude p99 spike. Like the other baseline gates, the check
// reads only the virtual twins and passes vacuously if they are absent.
func CheckRebalance(results []HotPathResult, maxRatio float64) error {
	if maxRatio <= 0 {
		maxRatio = 4
	}
	var quiesced, join, leave *HotPathResult
	for i := range results {
		switch results[i].Name {
		case "BenchmarkRebalanceForeground/quiesced/virtual":
			quiesced = &results[i]
		case "BenchmarkRebalanceForeground/join/virtual":
			join = &results[i]
		case "BenchmarkRebalanceForeground/leave/virtual":
			leave = &results[i]
		}
	}
	if quiesced == nil || quiesced.NsPerOp <= 0 {
		return nil
	}
	for _, r := range []*HotPathResult{join, leave} {
		if r == nil {
			continue
		}
		if ratio := float64(r.NsPerOp) / float64(quiesced.NsPerOp); ratio > maxRatio {
			return fmt.Errorf("bench: foreground p99 under migration regressed: %s %d ns is %.3fx quiesced %d ns (gate %.3fx)",
				r.Name, r.NsPerOp, ratio, quiesced.NsPerOp, maxRatio)
		}
	}
	return nil
}

// RenderRebalance formats results as the JSON written to BENCH_rebalance.json.
func RenderRebalance(results []HotPathResult) ([]byte, error) {
	return json.MarshalIndent(results, "", "  ")
}
