package tsdb

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/blob"
	"repro/internal/cluster"
	"repro/internal/storage"
)

func newDB(t *testing.T, window time.Duration) (*DB, *storage.Context) {
	t.Helper()
	c := cluster.New(cluster.Config{Nodes: 4, Seed: 1})
	db, err := Open(blob.New(c, blob.Config{ChunkSize: 512, Replication: 2}), "metrics", window)
	if err != nil {
		t.Fatal(err)
	}
	return db, storage.NewContext()
}

var t0 = time.Date(2017, 9, 5, 12, 0, 0, 0, time.UTC) // CLUSTER'17 week

func TestOpenValidation(t *testing.T) {
	c := cluster.New(cluster.Config{Nodes: 2, Seed: 1})
	if _, err := Open(blob.New(c, blob.Config{}), "m", 0); !errors.Is(err, storage.ErrInvalidArg) {
		t.Fatalf("Open with zero window: %v", err)
	}
}

func TestAppendQueryRoundTrip(t *testing.T) {
	db, ctx := newDB(t, time.Hour)
	for i := 0; i < 10; i++ {
		err := db.Append(ctx, "cpu", Point{T: t0.Add(time.Duration(i) * time.Minute), V: float64(i) * 1.5})
		if err != nil {
			t.Fatal(err)
		}
	}
	pts, err := db.Query(ctx, "cpu", t0, t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 10 {
		t.Fatalf("Query returned %d points, want 10", len(pts))
	}
	for i, p := range pts {
		if p.V != float64(i)*1.5 || !p.T.Equal(t0.Add(time.Duration(i)*time.Minute)) {
			t.Fatalf("point %d = %+v", i, p)
		}
	}
}

func TestQueryRangeFiltering(t *testing.T) {
	db, ctx := newDB(t, time.Hour)
	for i := 0; i < 60; i++ {
		db.Append(ctx, "mem", Point{T: t0.Add(time.Duration(i) * time.Minute), V: float64(i)})
	}
	pts, err := db.Query(ctx, "mem", t0.Add(10*time.Minute), t0.Add(20*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 10 {
		t.Fatalf("range query returned %d points, want 10", len(pts))
	}
	if pts[0].V != 10 || pts[9].V != 19 {
		t.Fatalf("range bounds wrong: first=%v last=%v", pts[0].V, pts[9].V)
	}
	// Empty and inverted ranges.
	if pts, _ := db.Query(ctx, "mem", t0, t0); pts != nil {
		t.Fatalf("empty range returned %d points", len(pts))
	}
	if pts, _ := db.Query(ctx, "mem", t0.Add(time.Hour), t0); pts != nil {
		t.Fatal("inverted range returned points")
	}
}

func TestWindowsSpanBlobs(t *testing.T) {
	db, ctx := newDB(t, 10*time.Minute)
	// 30 minutes of data -> 3 window blobs.
	for i := 0; i < 30; i++ {
		db.Append(ctx, "io", Point{T: t0.Add(time.Duration(i) * time.Minute), V: float64(i)})
	}
	pts, err := db.Query(ctx, "io", t0, t0.Add(30*time.Minute))
	if err != nil || len(pts) != 30 {
		t.Fatalf("cross-window query = (%d, %v)", len(pts), err)
	}
	// Query touching only the middle window.
	pts, err = db.Query(ctx, "io", t0.Add(12*time.Minute), t0.Add(17*time.Minute))
	if err != nil || len(pts) != 5 {
		t.Fatalf("mid-window query = (%d, %v)", len(pts), err)
	}
}

func TestSeriesDiscovery(t *testing.T) {
	db, ctx := newDB(t, time.Hour)
	db.Append(ctx, "cpu", Point{T: t0, V: 1})
	db.Append(ctx, "mem", Point{T: t0, V: 2})
	db.Append(ctx, "cpu", Point{T: t0.Add(time.Minute), V: 3})
	series, err := db.Series(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("Series = %v", series)
	}
	found := map[string]bool{}
	for _, s := range series {
		found[s] = true
	}
	if !found["cpu"] || !found["mem"] {
		t.Fatalf("Series = %v", series)
	}
}

func TestRetentionDropBefore(t *testing.T) {
	db, ctx := newDB(t, 10*time.Minute)
	for i := 0; i < 30; i++ {
		db.Append(ctx, "old", Point{T: t0.Add(time.Duration(i) * time.Minute), V: float64(i)})
	}
	// Drop windows fully before t0+20min: the first two 10-minute windows.
	dropped, err := db.DropBefore(ctx, "old", t0.Add(20*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 2 {
		t.Fatalf("dropped %d windows, want 2", dropped)
	}
	pts, err := db.Query(ctx, "old", t0, t0.Add(30*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 10 {
		t.Fatalf("%d points survive retention, want 10", len(pts))
	}
	if pts[0].V != 20 {
		t.Fatalf("surviving points start at %v, want 20", pts[0].V)
	}
}

func TestEmptySeriesRejected(t *testing.T) {
	db, ctx := newDB(t, time.Hour)
	if err := db.Append(ctx, "", Point{T: t0, V: 1}); !errors.Is(err, storage.ErrInvalidArg) {
		t.Fatalf("empty series: %v", err)
	}
}

func TestQueryUnknownSeries(t *testing.T) {
	db, ctx := newDB(t, time.Hour)
	pts, err := db.Query(ctx, "nothing", t0, t0.Add(time.Hour))
	if err != nil || pts != nil {
		t.Fatalf("unknown series = (%v, %v)", pts, err)
	}
}

func TestConcurrentAppends(t *testing.T) {
	db, _ := newDB(t, time.Hour)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := storage.NewContext()
			for i := 0; i < 25; i++ {
				err := db.Append(ctx, "shared", Point{
					T: t0.Add(time.Duration(w*25+i) * time.Second),
					V: float64(w),
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	ctx := storage.NewContext()
	pts, err := db.Query(ctx, "shared", t0, t0.Add(time.Hour))
	if err != nil || len(pts) != 100 {
		t.Fatalf("concurrent appends: %d points, %v", len(pts), err)
	}
}
