// Package tsdb implements a time-series store on top of the blob layer —
// the second of the paper's Section I "storage abstractions" built on
// blobs.
//
// Design: each (series, time-window) pair is one blob holding fixed-width
// 16-byte points (int64 unix-nano timestamp, float64 value) in append
// order. Window blobs are named <prefix>/<series>/<window-index>, so a
// range query discovers its windows with the Scan primitive (namespace
// access) and then performs random reads — the full Section III primitive
// set, no directories anywhere.
package tsdb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/storage"
)

// DB is a time-series database over a blob store.
type DB struct {
	blobs  storage.BlobStore
	prefix string
	window time.Duration

	mu sync.Mutex
	// ends caches the append offset per window blob key.
	ends map[string]int64
}

// Point is one sample.
type Point struct {
	T time.Time
	V float64
}

const pointSize = 16

// Open returns a DB storing points under the key prefix, partitioned into
// blobs of the given time window (e.g. time.Hour).
func Open(blobs storage.BlobStore, prefix string, window time.Duration) (*DB, error) {
	if window <= 0 {
		return nil, fmt.Errorf("tsdb: window %v: %w", window, storage.ErrInvalidArg)
	}
	return &DB{blobs: blobs, prefix: prefix, window: window, ends: make(map[string]int64)}, nil
}

func (db *DB) windowKey(series string, t time.Time) string {
	idx := t.UnixNano() / int64(db.window)
	return fmt.Sprintf("%s/%s/%020d", db.prefix, series, idx)
}

func (db *DB) seriesPrefix(series string) string {
	return fmt.Sprintf("%s/%s/", db.prefix, series)
}

// Append adds a point to a series, creating the window blob on first use.
// Appends are serialized per DB so concurrent writers never clobber each
// other's offsets.
func (db *DB) Append(ctx *storage.Context, series string, p Point) error {
	if series == "" {
		return fmt.Errorf("tsdb: empty series: %w", storage.ErrInvalidArg)
	}
	key := db.windowKey(series, p.T)

	db.mu.Lock()
	defer db.mu.Unlock()
	end, known := db.ends[key]
	if !known {
		if err := db.blobs.CreateBlob(ctx, key); err != nil && !errors.Is(err, storage.ErrExists) {
			return fmt.Errorf("tsdb: window %s: %w", key, err)
		}
		size, err := db.blobs.BlobSize(ctx, key)
		if err != nil {
			return fmt.Errorf("tsdb: window %s: %w", key, err)
		}
		end = size
	}

	var rec [pointSize]byte
	binary.LittleEndian.PutUint64(rec[0:8], uint64(p.T.UnixNano()))
	binary.LittleEndian.PutUint64(rec[8:16], math.Float64bits(p.V))
	if _, err := db.blobs.WriteBlob(ctx, key, end, rec[:]); err != nil {
		return fmt.Errorf("tsdb: append %s: %w", series, err)
	}
	db.ends[key] = end + pointSize
	return nil
}

// Query returns the series' points with from <= t < to, in append order.
// Window blobs are discovered via Scan and only overlapping windows are
// read.
func (db *DB) Query(ctx *storage.Context, series string, from, to time.Time) ([]Point, error) {
	if !to.After(from) {
		return nil, nil
	}
	infos, err := db.blobs.Scan(ctx, db.seriesPrefix(series))
	if err != nil {
		return nil, fmt.Errorf("tsdb: scan %s: %w", series, err)
	}
	loIdx := from.UnixNano() / int64(db.window)
	hiIdx := to.UnixNano() / int64(db.window)
	var out []Point
	for _, info := range infos {
		var idx int64
		if _, err := fmt.Sscanf(info.Key[len(db.seriesPrefix(series)):], "%d", &idx); err != nil {
			continue
		}
		if idx < loIdx || idx > hiIdx {
			continue
		}
		buf := make([]byte, info.Size)
		n, err := db.blobs.ReadBlob(ctx, info.Key, 0, buf)
		if err != nil {
			return nil, fmt.Errorf("tsdb: read window %s: %w", info.Key, err)
		}
		for off := 0; off+pointSize <= n; off += pointSize {
			ts := int64(binary.LittleEndian.Uint64(buf[off : off+8]))
			t := time.Unix(0, ts)
			if t.Before(from) || !t.Before(to) {
				continue
			}
			out = append(out, Point{
				T: t,
				V: math.Float64frombits(binary.LittleEndian.Uint64(buf[off+8 : off+16])),
			})
		}
	}
	return out, nil
}

// Series lists all series names under the DB's prefix (a namespace scan).
func (db *DB) Series(ctx *storage.Context) ([]string, error) {
	infos, err := db.blobs.Scan(ctx, db.prefix+"/")
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var out []string
	for _, info := range infos {
		rest := info.Key[len(db.prefix)+1:]
		for i := 0; i < len(rest); i++ {
			if rest[i] == '/' {
				name := rest[:i]
				if !seen[name] {
					seen[name] = true
					out = append(out, name)
				}
				break
			}
		}
	}
	return out, nil
}

// DropBefore deletes whole window blobs older than the cutoff (retention),
// using only scan + delete primitives.
func (db *DB) DropBefore(ctx *storage.Context, series string, cutoff time.Time) (int, error) {
	infos, err := db.blobs.Scan(ctx, db.seriesPrefix(series))
	if err != nil {
		return 0, err
	}
	cutIdx := cutoff.UnixNano() / int64(db.window)
	dropped := 0
	for _, info := range infos {
		var idx int64
		if _, err := fmt.Sscanf(info.Key[len(db.seriesPrefix(series)):], "%d", &idx); err != nil {
			continue
		}
		// A window holds points in [idx*w, (idx+1)*w); drop only windows
		// that end at or before the cutoff.
		if idx+1 <= cutIdx {
			if err := db.blobs.DeleteBlob(ctx, info.Key); err != nil {
				return dropped, err
			}
			db.mu.Lock()
			delete(db.ends, info.Key)
			db.mu.Unlock()
			dropped++
		}
	}
	return dropped, nil
}
