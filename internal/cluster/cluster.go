// Package cluster simulates the hardware substrate the paper's experiments
// ran on: a set of nodes, each with a disk and a NIC, joined by a network
// with a uniform cost model. It is the stand-in for the Grid'5000 parapluie
// cluster (DESIGN.md §2).
//
// Storage systems built on top of this package express their work as
// resource reservations — an RPC pays two NIC traversals plus the remote
// service time; a persisted write pays a disk transfer — and the per-client
// virtual clocks of package sim turn those reservations into latency and
// contention.
//
// Every charging endpoint (RPC, DiskRead, DiskWrite, DiskAppend, MetaOp)
// tolerates concurrent callers: resources and clocks are internally
// locked, and busy-time/op accounting never loses a reservation
// (TestConcurrentChargingAccumulatesExactly). Reservation ORDER under
// concurrency is scheduler-dependent, however, so callers that need
// reproducible virtual times serialize their charges — internal/blob's
// dispatcher records per-task ledgers and folds them at join in
// submission order for exactly this reason.
package cluster

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/sim"
)

// NodeID identifies a node within a cluster.
type NodeID int

// Node is one simulated machine: a disk resource, a NIC resource, and a CPU
// resource used for metadata-service work.
type Node struct {
	ID   NodeID
	disk *sim.Resource
	nic  *sim.Resource
	cpu  *sim.Resource
}

// Disk returns the node's disk resource.
func (n *Node) Disk() *sim.Resource { return n.disk }

// NIC returns the node's network-interface resource.
func (n *Node) NIC() *sim.Resource { return n.nic }

// CPU returns the node's metadata-CPU resource.
func (n *Node) CPU() *sim.Resource { return n.cpu }

// Config sizes a simulated cluster.
type Config struct {
	// Nodes is the number of machines. Must be >= 1.
	Nodes int
	// Cost is the hardware cost model. The zero value is replaced by
	// sim.DefaultCostModel.
	Cost sim.CostModel
	// Seed seeds the cluster-wide RNG.
	Seed uint64
}

// Cluster is a set of simulated nodes sharing one cost model.
type Cluster struct {
	nodes []*Node
	cost  sim.CostModel
	rng   *sim.RNG
	// faults holds the optional fault injector (fault.go); nil when no
	// injection is active, which is the hot-path case.
	faults atomic.Pointer[faultHolder]
}

// New builds a cluster from cfg. It panics if cfg.Nodes < 1; cluster sizing
// is a programming decision, not a runtime input.
func New(cfg Config) *Cluster {
	if cfg.Nodes < 1 {
		panic(fmt.Sprintf("cluster: invalid node count %d", cfg.Nodes))
	}
	if cfg.Cost == (sim.CostModel{}) {
		cfg.Cost = sim.DefaultCostModel()
	}
	c := &Cluster{
		cost: cfg.Cost,
		rng:  sim.NewRNG(cfg.Seed),
	}
	for i := 0; i < cfg.Nodes; i++ {
		c.nodes = append(c.nodes, &Node{
			ID:   NodeID(i),
			disk: sim.NewResource(fmt.Sprintf("node%d/disk", i)),
			nic:  sim.NewResource(fmt.Sprintf("node%d/nic", i)),
			cpu:  sim.NewResource(fmt.Sprintf("node%d/cpu", i)),
		})
	}
	return c
}

// Size returns the number of nodes.
func (c *Cluster) Size() int { return len(c.nodes) }

// Node returns the node with the given ID. It panics on an out-of-range ID.
func (c *Cluster) Node(id NodeID) *Node {
	if int(id) < 0 || int(id) >= len(c.nodes) {
		panic(fmt.Sprintf("cluster: no node %d in %d-node cluster", id, len(c.nodes)))
	}
	return c.nodes[id]
}

// Nodes returns all nodes in ID order.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Cost returns the cluster's hardware cost model.
func (c *Cluster) Cost() sim.CostModel { return c.cost }

// RNG returns the cluster-wide deterministic random source.
func (c *Cluster) RNG() *sim.RNG { return c.rng }

// RPC charges clk for a round trip from a client to node dst carrying
// reqBytes of request payload and respBytes of response payload, plus the
// given remote service time spent on the destination node's CPU. It models
// the dominant costs of every remote operation in the repository.
func (c *Cluster) RPC(clk *sim.Clock, dst NodeID, reqBytes, respBytes int, service time.Duration) {
	n := c.Node(dst)
	// Request traversal: client NIC is abstracted into the uniform wire
	// cost; the destination NIC is the contended resource.
	t := n.nic.Use(clk.Now()+c.cost.WireTime(reqBytes), 0)
	// Remote service on the destination CPU.
	t = n.cpu.Use(t, service)
	// Response traversal.
	t = n.nic.Use(t, 0)
	clk.AdvanceTo(t + c.cost.WireTime(respBytes))
}

// DiskWrite charges clk for persisting n bytes on node dst's disk.
func (c *Cluster) DiskWrite(clk *sim.Clock, dst NodeID, n int) {
	node := c.Node(dst)
	clk.AdvanceTo(node.disk.Use(clk.Now(), c.cost.DiskTime(n)))
}

// DiskRead charges clk for reading n bytes from node dst's disk.
func (c *Cluster) DiskRead(clk *sim.Clock, dst NodeID, n int) {
	c.DiskWrite(clk, dst, n) // identical first-order cost
}

// DiskAppend charges clk for a sequential journal append of n bytes on
// node dst — bandwidth only, no seek (WALs live on a sequential log
// device).
func (c *Cluster) DiskAppend(clk *sim.Clock, dst NodeID, n int) {
	node := c.Node(dst)
	clk.AdvanceTo(node.disk.Use(clk.Now(), c.cost.DiskAppendTime(n)))
}

// MetaOp charges clk for k metadata operations executed on node dst,
// including the RPC round trip to reach it. This is the building block for
// path resolution, permission checks and lock traffic.
func (c *Cluster) MetaOp(clk *sim.Clock, dst NodeID, k int) {
	c.RPC(clk, dst, 64, 64, c.cost.MetaTime(k))
}

// LocalCompute charges clk for purely local CPU work of duration d without
// touching any shared resource.
func (c *Cluster) LocalCompute(clk *sim.Clock, d time.Duration) {
	clk.Advance(d)
}

// ResetStats clears all resource statistics and queues, so consecutive
// experiments on one cluster start from an idle state.
func (c *Cluster) ResetStats() {
	for _, n := range c.nodes {
		n.disk.Reset()
		n.nic.Reset()
		n.cpu.Reset()
	}
}

// Utilization reports the total busy time summed over every resource of
// every node, grouped by resource kind. Useful for explaining benchmark
// outcomes.
func (c *Cluster) Utilization() (disk, nic, cpu time.Duration) {
	for _, n := range c.nodes {
		d, _ := n.disk.Stats()
		w, _ := n.nic.Stats()
		p, _ := n.cpu.Stats()
		disk += d
		nic += w
		cpu += p
	}
	return disk, nic, cpu
}
