package cluster

import (
	"time"

	"repro/internal/sim"
)

// Fault injection: an optional hook on the cluster's charging endpoints that
// lets tests make individual operations fail, stall, or both. The cluster
// itself never consults the hook — injection is opt-in at the storage layer
// (internal/blob asks FaultFor before charging an operation and decides how
// to react), which keeps the charge endpoints' accounting guarantees intact
// and lets a storage system define its own retry/degrade policy.

// FaultKind names the class of operation a fault applies to. The values
// mirror the cluster's charging endpoints.
type FaultKind int

const (
	// FaultAny matches every kind in a FaultRule.
	FaultAny FaultKind = iota - 1
	// FaultRPC covers plain RPC round trips.
	FaultRPC
	// FaultDiskRead covers random disk reads.
	FaultDiskRead
	// FaultDiskWrite covers random disk writes.
	FaultDiskWrite
	// FaultDiskAppend covers sequential journal appends.
	FaultDiskAppend
	// FaultMetaOp covers metadata-service operations.
	FaultMetaOp
)

// String returns the kind's name for diagnostics.
func (k FaultKind) String() string {
	switch k {
	case FaultAny:
		return "any"
	case FaultRPC:
		return "rpc"
	case FaultDiskRead:
		return "disk-read"
	case FaultDiskWrite:
		return "disk-write"
	case FaultDiskAppend:
		return "disk-append"
	case FaultMetaOp:
		return "meta-op"
	default:
		return "unknown"
	}
}

// Fault describes one injected outcome. Slow adds virtual-clock latency to
// the operation; Err, when non-nil, makes it fail. A fault can carry both
// (slow then fail). Transient marks an error worth retrying — the storage
// layer retries those with backoff and treats everything else as a hard
// fault of the node.
type Fault struct {
	Err       error
	Transient bool
	Slow      time.Duration
}

// FaultInjector decides, per operation, whether a fault fires. Implementations
// must tolerate concurrent callers.
type FaultInjector interface {
	FaultFor(node NodeID, kind FaultKind) (Fault, bool)
}

// faultHolder boxes the interface so it can live in an atomic.Pointer.
type faultHolder struct{ fi FaultInjector }

// SetFaultInjector installs (or, with nil, removes) the cluster's fault
// injector. Safe to call concurrently with operations in flight; operations
// already past their FaultFor check complete unaffected.
func (c *Cluster) SetFaultInjector(fi FaultInjector) {
	if fi == nil {
		c.faults.Store(nil)
		return
	}
	c.faults.Store(&faultHolder{fi: fi})
}

// FaultFor consults the installed injector. With none installed it is a
// single atomic load — effectively free on the hot path.
func (c *Cluster) FaultFor(node NodeID, kind FaultKind) (Fault, bool) {
	h := c.faults.Load()
	if h == nil {
		return Fault{}, false
	}
	return h.fi.FaultFor(node, kind)
}

// FaultRule is one probabilistic match clause of a FaultPlan. Node -1
// matches any node; Kind FaultAny matches any kind. Rules are evaluated in
// order and the first whose coin flip lands yields its Fault.
type FaultRule struct {
	Node  NodeID
	Kind  FaultKind
	Prob  float64
	Fault Fault
}

// FaultPlan is a seeded probabilistic FaultInjector: deterministic given its
// seed AND the sequence of FaultFor queries. Concurrent callers serialize on
// the plan's RNG, so the query order — and therefore which operations fault —
// is scheduler-dependent under concurrency; chaos tests must assert
// schedule-independent invariants, not specific fault placements.
type FaultPlan struct {
	rng   *sim.RNG
	rules []FaultRule
}

// NewFaultPlan builds a plan from a seed and its rules (evaluated in order).
func NewFaultPlan(seed uint64, rules []FaultRule) *FaultPlan {
	return &FaultPlan{rng: sim.NewRNG(seed), rules: rules}
}

// FaultFor implements FaultInjector.
func (p *FaultPlan) FaultFor(node NodeID, kind FaultKind) (Fault, bool) {
	for i := range p.rules {
		r := &p.rules[i]
		if r.Node >= 0 && r.Node != node {
			continue
		}
		if r.Kind != FaultAny && r.Kind != kind {
			continue
		}
		if r.Prob >= 1 || p.rng.Float64() < r.Prob {
			return r.Fault, true
		}
	}
	return Fault{}, false
}

var _ FaultInjector = (*FaultPlan)(nil)
