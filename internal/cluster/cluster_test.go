package cluster

import (
	"sync"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestNewValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with 0 nodes did not panic")
		}
	}()
	New(Config{Nodes: 0})
}

func TestNewDefaultsCostModel(t *testing.T) {
	c := New(Config{Nodes: 2})
	if c.Cost() != sim.DefaultCostModel() {
		t.Fatalf("zero cost model not defaulted: %+v", c.Cost())
	}
	if c.Size() != 2 {
		t.Fatalf("Size() = %d, want 2", c.Size())
	}
}

func TestNodeAccessorsAndPanic(t *testing.T) {
	c := New(Config{Nodes: 3})
	n := c.Node(2)
	if n.ID != 2 || n.Disk() == nil || n.NIC() == nil || n.CPU() == nil {
		t.Fatalf("node accessors broken: %+v", n)
	}
	if got := len(c.Nodes()); got != 3 {
		t.Fatalf("Nodes() length = %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Node(99) did not panic")
		}
	}()
	c.Node(99)
}

func TestRPCAdvancesClock(t *testing.T) {
	c := New(Config{Nodes: 1})
	clk := sim.NewClock()
	c.RPC(clk, 0, 100, 100, 50*time.Microsecond)
	cost := c.Cost()
	want := 2*cost.WireTime(100) + 50*time.Microsecond
	if got := clk.Now(); got != want {
		t.Fatalf("RPC advanced clock to %v, want %v", got, want)
	}
}

func TestRPCContentionSerializes(t *testing.T) {
	c := New(Config{Nodes: 1})
	// Two clients hit the same node CPU with long service times at t=0; the
	// second must observe queueing delay.
	a, b := sim.NewClock(), sim.NewClock()
	c.RPC(a, 0, 0, 0, time.Millisecond)
	c.RPC(b, 0, 0, 0, time.Millisecond)
	if b.Now() <= a.Now() {
		t.Fatalf("no contention observed: a=%v b=%v", a.Now(), b.Now())
	}
	if b.Now() < 2*time.Millisecond {
		t.Fatalf("second RPC finished at %v, want >= 2ms of serialized service", b.Now())
	}
}

func TestDiskReadWriteSymmetry(t *testing.T) {
	c := New(Config{Nodes: 1})
	w, r := sim.NewClock(), sim.NewClock()
	c.DiskWrite(w, 0, 1<<20)
	c2 := New(Config{Nodes: 1})
	c2.DiskRead(r, 0, 1<<20)
	if w.Now() != r.Now() {
		t.Fatalf("read/write cost asymmetric: %v vs %v", w.Now(), r.Now())
	}
}

func TestMetaOpScalesWithCount(t *testing.T) {
	c := New(Config{Nodes: 1})
	one, five := sim.NewClock(), sim.NewClock()
	c.MetaOp(one, 0, 1)
	c.ResetStats()
	c.MetaOp(five, 0, 5)
	if five.Now() <= one.Now() {
		t.Fatalf("MetaOp(5)=%v not more expensive than MetaOp(1)=%v", five.Now(), one.Now())
	}
	diff := five.Now() - one.Now()
	if want := 4 * c.Cost().MetaOp; diff != want {
		t.Fatalf("MetaOp marginal cost = %v, want %v", diff, want)
	}
}

func TestLocalCompute(t *testing.T) {
	c := New(Config{Nodes: 1})
	clk := sim.NewClock()
	c.LocalCompute(clk, 3*time.Millisecond)
	if clk.Now() != 3*time.Millisecond {
		t.Fatalf("LocalCompute: clock = %v", clk.Now())
	}
	disk, nic, cpu := c.Utilization()
	if disk != 0 || nic != 0 || cpu != 0 {
		t.Fatal("LocalCompute touched shared resources")
	}
}

func TestUtilizationAndReset(t *testing.T) {
	c := New(Config{Nodes: 2})
	clk := sim.NewClock()
	c.DiskWrite(clk, 0, 1<<20)
	c.RPC(clk, 1, 10, 10, time.Millisecond)
	disk, _, cpu := c.Utilization()
	if disk == 0 || cpu == 0 {
		t.Fatalf("Utilization missing activity: disk=%v cpu=%v", disk, cpu)
	}
	c.ResetStats()
	disk, nic, cpu := c.Utilization()
	if disk != 0 || nic != 0 || cpu != 0 {
		t.Fatal("ResetStats did not clear utilization")
	}
}

func TestRNGDeterministicPerSeed(t *testing.T) {
	a := New(Config{Nodes: 1, Seed: 5})
	b := New(Config{Nodes: 1, Seed: 5})
	for i := 0; i < 32; i++ {
		if a.RNG().Uint64() != b.RNG().Uint64() {
			t.Fatal("same-seed clusters diverge")
		}
	}
}

// TestConcurrentChargingAccumulatesExactly: the cluster's charging
// endpoints are hit concurrently by the blob dispatcher's fold-at-join
// (one folding goroutine per in-flight client operation). Under -race this
// pins their locking; the accounting must not lose a single reservation.
func TestConcurrentChargingAccumulatesExactly(t *testing.T) {
	c := New(Config{Nodes: 4})
	const workers, each = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			clk := sim.NewClock()
			for i := 0; i < each; i++ {
				node := NodeID((w + i) % 4)
				c.DiskWrite(clk, node, 4096)
				c.MetaOp(clk, node, 1)
			}
		}(w)
	}
	wg.Wait()
	var diskOps, cpuOps int64
	for _, n := range c.Nodes() {
		_, d := n.Disk().Stats()
		_, p := n.CPU().Stats()
		diskOps += d
		cpuOps += p
	}
	if want := int64(workers * each); diskOps != want || cpuOps != want {
		t.Fatalf("lost reservations: disk ops = %d, cpu ops = %d, want %d each", diskOps, cpuOps, want)
	}
	wantDisk := time.Duration(workers*each) * c.Cost().DiskTime(4096)
	disk, _, _ := c.Utilization()
	if disk != wantDisk {
		t.Fatalf("disk busy = %v, want %v", disk, wantDisk)
	}
}
