// Package sparksim implements a miniature Spark-on-YARN execution engine,
// faithful to the storage-call behaviour the paper traces in Section IV-D:
//
//   - application submission uploads the Spark jar, application jar and
//     configuration into a per-application .sparkStaging directory
//     (Table II's staging mkdir/rmdir traffic);
//   - an event-log directory records the application's events (the "logs of
//     the application execution" of Section IV-D), removed by retention
//     cleanup at the end of the run;
//   - the input-data directory is listed exactly once before the run to
//     enumerate splits — the only opendir an application ever issues
//     (Table II: 5 input-directory listings, 0 others);
//   - every other path is accessed directly — the engine remembers the
//     paths it created instead of listing directories, reproducing the
//     paper's observation that "Spark accesses directly all the other
//     files it needs with their path";
//   - output goes through a FileOutputCommitter-style protocol: task
//     attempts write under <out>/_temporary/0/<attempt>/, task commit
//     renames the part file into the output directory, job commit removes
//     the temporary tree and writes _SUCCESS.
//
// Tasks execute on a pool of executor workers, each with a forked virtual
// clock; stage boundaries join the clocks (the straggler determines stage
// latency, as in real Spark).
package sparksim

import (
	"fmt"
	"sync"

	"repro/internal/storage"
)

// Engine runs applications against one file system (usually a trace.FS
// wrapping relaxedfs).
type Engine struct {
	fs        storage.FileSystem
	executors int
	chunk     int
}

// NewEngine returns an engine with the given executor count (>=1).
func NewEngine(fs storage.FileSystem, executors int) *Engine {
	if executors < 1 {
		executors = 1
	}
	return &Engine{fs: fs, executors: executors, chunk: readChunk}
}

// SetChunkSize overrides the per-call I/O granularity. The Table-I volumes
// are scaled down 1:1024 in this reproduction; scaling the I/O unit along
// with them keeps the call-count ratios of Figures 1–2 faithful.
func (e *Engine) SetChunkSize(n int) {
	if n > 0 {
		e.chunk = n
	}
}

// App describes one application, parameterised the way the Table-I
// workloads need.
type App struct {
	// Name identifies the application (staging/eventlog paths derive from
	// it).
	Name string
	// InputDir is the input-data directory, listed once for splits.
	InputDir string
	// OutputDir receives committed output; it must already exist (job
	// submission scripts create it offline, per the paper's Section IV-C
	// observation about run preparation).
	OutputDir string
	// OutputTasks is the number of reduce/output tasks (= part files and
	// committer attempt directories).
	OutputTasks int
	// Passes is how many times the input is read end-to-end (iterative
	// algorithms like Decision Tree read the training set repeatedly).
	Passes int
	// OutputBytes maps an output task index and the total input volume to
	// that task's output size. Required when OutputTasks > 0.
	OutputBytes func(task int, inputBytes int64) int64
	// StagingRoot and EventLogRoot default to /user/spark/.sparkStaging
	// and /spark-logs; both must already exist.
	StagingRoot  string
	EventLogRoot string
	// ArtifactBytes overrides the sizes of the staged submission artifacts
	// (jar and configuration uploads). Nil selects the built-in defaults;
	// scaled-down experiment runs scale these along with the data volumes.
	ArtifactBytes map[string]int64
}

func (a App) withDefaults() App {
	if a.StagingRoot == "" {
		a.StagingRoot = "/user/spark/.sparkStaging"
	}
	if a.EventLogRoot == "" {
		a.EventLogRoot = "/spark-logs"
	}
	if a.Passes < 1 {
		a.Passes = 1
	}
	return a
}

// Result summarizes one application run.
type Result struct {
	App          string
	MapTasks     int
	OutputTasks  int
	BytesRead    int64
	BytesWritten int64
}

const readChunk = 64 << 10

// Run executes the application: submit, read input (map stage), write
// output through the committer (reduce stage), then clean up.
func (e *Engine) Run(ctx *storage.Context, app App) (*Result, error) {
	app = app.withDefaults()
	if app.Name == "" {
		return nil, fmt.Errorf("sparksim: app name required: %w", storage.ErrInvalidArg)
	}
	if app.OutputTasks > 0 && app.OutputBytes == nil {
		return nil, fmt.Errorf("sparksim: OutputBytes required with OutputTasks: %w", storage.ErrInvalidArg)
	}

	staging := app.StagingRoot + "/" + app.Name
	eventDir := app.EventLogRoot + "/" + app.Name

	// --- Submission: staging dir + artifact upload. ---
	if err := e.fs.Mkdir(ctx, staging); err != nil {
		return nil, fmt.Errorf("sparksim: staging: %w", err)
	}
	artifacts := app.ArtifactBytes
	if artifacts == nil {
		artifacts = map[string]int64{
			"spark-libs.jar": 96 << 10,
			"app.jar":        24 << 10,
			"spark-conf.zip": 4 << 10,
		}
	}
	for name, size := range artifacts {
		if err := e.writeFile(ctx, staging+"/"+name, size); err != nil {
			return nil, fmt.Errorf("sparksim: upload %s: %w", name, err)
		}
	}

	// --- Event log setup. ---
	if err := e.fs.Mkdir(ctx, eventDir); err != nil {
		return nil, fmt.Errorf("sparksim: eventlog dir: %w", err)
	}
	events, err := e.fs.Create(ctx, eventDir+"/events.log")
	if err != nil {
		return nil, fmt.Errorf("sparksim: eventlog: %w", err)
	}
	var eventOff int64
	logEvent := func(line string) {
		n, _ := events.WriteAt(ctx, eventOff, []byte(line+"\n"))
		eventOff += int64(n)
	}
	logEvent("SparkListenerApplicationStart " + app.Name)

	// --- Input listing: the one and only opendir. ---
	entries, err := e.fs.ReadDir(ctx, app.InputDir)
	if err != nil {
		return nil, fmt.Errorf("sparksim: list input: %w", err)
	}
	var splits []string
	for _, ent := range entries {
		if !ent.IsDir {
			splits = append(splits, app.InputDir+"/"+ent.Name)
		}
	}
	if len(splits) == 0 {
		return nil, fmt.Errorf("sparksim: no input splits in %s: %w", app.InputDir, storage.ErrNotFound)
	}

	res := &Result{App: app.Name, MapTasks: len(splits) * app.Passes, OutputTasks: app.OutputTasks}

	// --- Map stage(s): read every split, Passes times. ---
	for pass := 0; pass < app.Passes; pass++ {
		read, err := e.mapStage(ctx, splits)
		if err != nil {
			return nil, fmt.Errorf("sparksim: map stage pass %d: %w", pass, err)
		}
		res.BytesRead += read
		logEvent(fmt.Sprintf("SparkListenerStageCompleted map pass=%d read=%d", pass, read))
	}

	// --- Reduce stage: committer-protocol output. ---
	if app.OutputTasks > 0 {
		written, err := e.reduceStage(ctx, app, res.BytesRead/int64(app.Passes))
		if err != nil {
			return nil, fmt.Errorf("sparksim: reduce stage: %w", err)
		}
		res.BytesWritten += written
		logEvent(fmt.Sprintf("SparkListenerStageCompleted reduce written=%d", written))
	}

	logEvent("SparkListenerApplicationEnd " + app.Name)
	if err := events.Sync(ctx); err != nil {
		return nil, err
	}
	if err := events.Close(ctx); err != nil {
		return nil, err
	}
	res.BytesWritten += eventOff

	// --- Cleanup: staging teardown + event-log retention. ---
	for name := range artifacts {
		if err := e.fs.Unlink(ctx, staging+"/"+name); err != nil {
			return nil, fmt.Errorf("sparksim: cleanup %s: %w", name, err)
		}
	}
	if err := e.fs.Rmdir(ctx, staging); err != nil {
		return nil, fmt.Errorf("sparksim: cleanup staging: %w", err)
	}
	if err := e.fs.Unlink(ctx, eventDir+"/events.log"); err != nil {
		return nil, err
	}
	if err := e.fs.Rmdir(ctx, eventDir); err != nil {
		return nil, err
	}
	return res, nil
}

// mapStage reads every split fully on the executor pool and returns the
// byte count.
func (e *Engine) mapStage(ctx *storage.Context, splits []string) (int64, error) {
	var mu sync.Mutex
	var total int64
	var firstErr error
	work := make(chan string)
	var contexts []*storage.Context
	var wg sync.WaitGroup
	for w := 0; w < e.executors; w++ {
		child := ctx.Fork()
		contexts = append(contexts, child)
		wg.Add(1)
		go func(tctx *storage.Context) {
			defer wg.Done()
			buf := make([]byte, e.chunk)
			for path := range work {
				n, err := e.readFile(tctx, path, buf)
				mu.Lock()
				total += n
				if err != nil && firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(child)
	}
	for _, s := range splits {
		work <- s
	}
	close(work)
	wg.Wait()
	for _, c := range contexts {
		ctx.Clock.Join(c.Clock)
	}
	return total, firstErr
}

func (e *Engine) readFile(ctx *storage.Context, path string, buf []byte) (int64, error) {
	h, err := e.fs.Open(ctx, path)
	if err != nil {
		return 0, err
	}
	var off int64
	for {
		n, err := h.ReadAt(ctx, off, buf)
		off += int64(n)
		if err != nil {
			h.Close(ctx)
			return off, err
		}
		if n == 0 {
			break
		}
	}
	return off, h.Close(ctx)
}

// reduceStage writes OutputTasks part files through the committer protocol
// and returns the committed byte count.
func (e *Engine) reduceStage(ctx *storage.Context, app App, inputBytes int64) (int64, error) {
	tmp := app.OutputDir + "/_temporary"
	if err := e.fs.Mkdir(ctx, tmp); err != nil {
		return 0, err
	}
	attemptRoot := tmp + "/0"
	if err := e.fs.Mkdir(ctx, attemptRoot); err != nil {
		return 0, err
	}

	type taskOut struct {
		attemptDir string
		written    int64
		err        error
	}
	results := make([]taskOut, app.OutputTasks)
	work := make(chan int)
	var contexts []*storage.Context
	var wg sync.WaitGroup
	for w := 0; w < e.executors; w++ {
		child := ctx.Fork()
		contexts = append(contexts, child)
		wg.Add(1)
		go func(tctx *storage.Context) {
			defer wg.Done()
			for task := range work {
				attempt := fmt.Sprintf("%s/attempt_%04d_0", attemptRoot, task)
				out := taskOut{attemptDir: attempt}
				if err := e.fs.Mkdir(tctx, attempt); err != nil {
					out.err = err
					results[task] = out
					continue
				}
				part := fmt.Sprintf("%s/part-%05d", attempt, task)
				size := app.OutputBytes(task, inputBytes)
				if err := e.writeFile(tctx, part, size); err != nil {
					out.err = err
					results[task] = out
					continue
				}
				// Task commit: rename the part file into the output dir
				// (v1 committer semantics, direct path access, no listing).
				final := fmt.Sprintf("%s/part-%05d", app.OutputDir, task)
				if err := e.fs.Rename(tctx, part, final); err != nil {
					out.err = err
					results[task] = out
					continue
				}
				out.written = size
				results[task] = out
			}
		}(child)
	}
	for task := 0; task < app.OutputTasks; task++ {
		work <- task
	}
	close(work)
	wg.Wait()
	for _, c := range contexts {
		ctx.Clock.Join(c.Clock)
	}

	var total int64
	for task, out := range results {
		if out.err != nil {
			return 0, fmt.Errorf("task %d: %w", task, out.err)
		}
		total += out.written
	}

	// Job commit: tear down the temporary tree (paths remembered, no
	// listing) and mark success.
	for _, out := range results {
		if err := e.fs.Rmdir(ctx, out.attemptDir); err != nil {
			return 0, err
		}
	}
	if err := e.fs.Rmdir(ctx, attemptRoot); err != nil {
		return 0, err
	}
	if err := e.fs.Rmdir(ctx, tmp); err != nil {
		return 0, err
	}
	success, err := e.fs.Create(ctx, app.OutputDir+"/_SUCCESS")
	if err != nil {
		return 0, err
	}
	if err := success.Close(ctx); err != nil {
		return 0, err
	}
	return total, nil
}

// writeFile streams size pseudo-content bytes into a new file in
// readChunk-sized appends.
func (e *Engine) writeFile(ctx *storage.Context, path string, size int64) error {
	h, err := e.fs.Create(ctx, path)
	if err != nil {
		return err
	}
	buf := make([]byte, e.chunk)
	for i := range buf {
		buf[i] = byte(i)
	}
	var off int64
	for off < size {
		take := int64(len(buf))
		if take > size-off {
			take = size - off
		}
		n, err := h.WriteAt(ctx, off, buf[:take])
		if err != nil {
			h.Close(ctx)
			return err
		}
		off += int64(n)
	}
	return h.Close(ctx)
}
