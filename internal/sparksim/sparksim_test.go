package sparksim

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/fs/relaxedfs"
	"repro/internal/storage"
	"repro/internal/trace"
)

// newEnv builds a traced relaxedfs with input data and the directories the
// submission scripts prepare offline (per Section IV-C, prep is not part of
// the traced application run — but here everything runs through the tracer
// only after setup).
func newEnv(t *testing.T, splitFiles int, splitSize int64) (*Engine, *trace.Census, *storage.Context) {
	t.Helper()
	fs := relaxedfs.New(cluster.New(cluster.Config{Nodes: 5, Seed: 1}), relaxedfs.Config{BlockSize: 1 << 20})
	setup := storage.NewContext()
	mustMkdirAll(t, fs, setup, "/user")
	mustMkdirAll(t, fs, setup, "/user/spark")
	mustMkdirAll(t, fs, setup, "/user/spark/.sparkStaging")
	mustMkdirAll(t, fs, setup, "/spark-logs")
	mustMkdirAll(t, fs, setup, "/input")
	mustMkdirAll(t, fs, setup, "/output")
	for i := 0; i < splitFiles; i++ {
		path := fmt.Sprintf("/input/part-%04d", i)
		h, err := fs.Create(setup, path)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, splitSize)
		if _, err := h.WriteAt(setup, 0, buf); err != nil {
			t.Fatal(err)
		}
		if err := h.Close(setup); err != nil {
			t.Fatal(err)
		}
	}
	census := trace.NewCensus()
	census.MarkInputDir("/input")
	traced := trace.Wrap(fs, census)
	return NewEngine(traced, 4), census, storage.NewContext()
}

func mustMkdirAll(t *testing.T, fs storage.FileSystem, ctx *storage.Context, path string) {
	t.Helper()
	if err := fs.Mkdir(ctx, path); err != nil && !errors.Is(err, storage.ErrExists) {
		t.Fatalf("mkdir %s: %v", path, err)
	}
}

func simpleApp(tasks int) App {
	return App{
		Name:        "app-under-test",
		InputDir:    "/input",
		OutputDir:   "/output",
		OutputTasks: tasks,
		OutputBytes: func(task int, inputBytes int64) int64 { return 1000 },
	}
}

func TestRunProducesOutput(t *testing.T) {
	e, _, ctx := newEnv(t, 3, 10_000)
	res, err := e.Run(ctx, simpleApp(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.MapTasks != 3 {
		t.Fatalf("MapTasks = %d, want 3 splits", res.MapTasks)
	}
	if res.BytesRead != 30_000 {
		t.Fatalf("BytesRead = %d, want 30000", res.BytesRead)
	}
	if res.BytesWritten < 4000 {
		t.Fatalf("BytesWritten = %d, want >= 4000 part bytes", res.BytesWritten)
	}
	// Output files committed, temporary tree gone, _SUCCESS present.
	inner := e.fs.(*trace.FS).Inner()
	for i := 0; i < 4; i++ {
		if _, err := inner.Stat(ctx, fmt.Sprintf("/output/part-%05d", i)); err != nil {
			t.Fatalf("part %d missing: %v", i, err)
		}
	}
	if _, err := inner.Stat(ctx, "/output/_SUCCESS"); err != nil {
		t.Fatalf("_SUCCESS missing: %v", err)
	}
	if _, err := inner.Stat(ctx, "/output/_temporary"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("_temporary survived job commit: %v", err)
	}
}

func TestDirectoryCensusPerApp(t *testing.T) {
	// The Table II mechanics: one app with T output tasks issues exactly
	// 4+T mkdirs, 4+T rmdirs, 1 input opendir, 0 other opendirs.
	for _, tasks := range []int{1, 4, 6} {
		e, census, ctx := newEnv(t, 2, 1000)
		if _, err := e.Run(ctx, simpleApp(tasks)); err != nil {
			t.Fatal(err)
		}
		if got := census.OpCount(storage.OpMkdir); got != int64(4+tasks) {
			t.Fatalf("tasks=%d: mkdir = %d, want %d", tasks, got, 4+tasks)
		}
		if got := census.OpCount(storage.OpRmdir); got != int64(4+tasks) {
			t.Fatalf("tasks=%d: rmdir = %d, want %d", tasks, got, 4+tasks)
		}
		if got := census.OpendirInput(); got != 1 {
			t.Fatalf("tasks=%d: opendir(input) = %d, want 1", tasks, got)
		}
		if got := census.OpendirOther(); got != 0 {
			t.Fatalf("tasks=%d: opendir(other) = %d, want 0", tasks, got)
		}
	}
}

func TestStagingCleanedUp(t *testing.T) {
	e, _, ctx := newEnv(t, 1, 100)
	if _, err := e.Run(ctx, simpleApp(2)); err != nil {
		t.Fatal(err)
	}
	inner := e.fs.(*trace.FS).Inner()
	if _, err := inner.Stat(ctx, "/user/spark/.sparkStaging/app-under-test"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("staging dir survived: %v", err)
	}
	if _, err := inner.Stat(ctx, "/spark-logs/app-under-test"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("eventlog dir survived retention: %v", err)
	}
}

func TestPassesMultiplyReads(t *testing.T) {
	e, _, ctx := newEnv(t, 2, 5000)
	app := simpleApp(1)
	app.Passes = 3
	res, err := e.Run(ctx, app)
	if err != nil {
		t.Fatal(err)
	}
	if res.BytesRead != 30_000 {
		t.Fatalf("BytesRead = %d, want 3 passes x 10000", res.BytesRead)
	}
	if res.MapTasks != 6 {
		t.Fatalf("MapTasks = %d, want 6", res.MapTasks)
	}
}

func TestZeroOutputTasksSkipsCommitter(t *testing.T) {
	e, census, ctx := newEnv(t, 1, 100)
	app := simpleApp(0)
	app.OutputBytes = nil
	if _, err := e.Run(ctx, app); err != nil {
		t.Fatal(err)
	}
	// Only staging + eventlog dirs.
	if got := census.OpCount(storage.OpMkdir); got != 2 {
		t.Fatalf("mkdir = %d, want 2", got)
	}
}

func TestErrorsOnBadApp(t *testing.T) {
	e, _, ctx := newEnv(t, 1, 100)
	if _, err := e.Run(ctx, App{InputDir: "/input"}); !errors.Is(err, storage.ErrInvalidArg) {
		t.Fatalf("nameless app: %v", err)
	}
	app := simpleApp(2)
	app.OutputBytes = nil
	if _, err := e.Run(ctx, app); !errors.Is(err, storage.ErrInvalidArg) {
		t.Fatalf("missing OutputBytes: %v", err)
	}
	app = simpleApp(1)
	app.InputDir = "/missing"
	if _, err := e.Run(ctx, app); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("missing input: %v", err)
	}
}

func TestEmptyInputDirRejected(t *testing.T) {
	e, _, ctx := newEnv(t, 1, 100)
	inner := e.fs.(*trace.FS).Inner()
	mustMkdirAll(t, inner, storage.NewContext(), "/empty")
	app := simpleApp(1)
	app.InputDir = "/empty"
	if _, err := e.Run(ctx, app); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("empty input: %v", err)
	}
}

func TestVirtualTimeAdvances(t *testing.T) {
	e, _, ctx := newEnv(t, 4, 100_000)
	before := ctx.Clock.Now()
	if _, err := e.Run(ctx, simpleApp(2)); err != nil {
		t.Fatal(err)
	}
	if ctx.Clock.Now() <= before {
		t.Fatal("run did not advance virtual time")
	}
}

func TestCallMixDominatedByFileOps(t *testing.T) {
	// Figure 2's shape: with realistic data volumes the file-op share
	// exceeds 98%. The I/O unit is scaled along with the data volumes so
	// call-count ratios stay faithful (see SetChunkSize).
	e, census, ctx := newEnv(t, 8, 2<<20)
	e.SetChunkSize(8 << 10)
	app := simpleApp(4)
	app.OutputBytes = func(task int, in int64) int64 { return in / 8 }
	if _, err := e.Run(ctx, app); err != nil {
		t.Fatal(err)
	}
	fileShare := census.Percent(storage.CallFileRead) + census.Percent(storage.CallFileWrite)
	if fileShare < 98 {
		t.Fatalf("file-op share = %.2f%%, want > 98%% (census: %s)", fileShare, census)
	}
}

func TestExecutorCountClamped(t *testing.T) {
	fs := relaxedfs.New(cluster.New(cluster.Config{Nodes: 2, Seed: 1}), relaxedfs.Config{})
	e := NewEngine(fs, 0)
	if e.executors != 1 {
		t.Fatalf("executors = %d, want clamped to 1", e.executors)
	}
}
