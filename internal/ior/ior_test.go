package ior

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/blob"
	"repro/internal/blobfs"
	"repro/internal/cluster"
	"repro/internal/fs/posixfs"
	"repro/internal/fs/relaxedfs"
	"repro/internal/storage"
)

func posixTarget(t *testing.T) storage.FileSystem {
	t.Helper()
	fs := posixfs.NewStrict(cluster.New(cluster.Config{Nodes: 9, Seed: 1}))
	if err := fs.Mkdir(storage.NewContext(), "/ior"); err != nil {
		t.Fatal(err)
	}
	return fs
}

func blobTarget(t *testing.T) storage.FileSystem {
	t.Helper()
	c := cluster.New(cluster.Config{Nodes: 9, Seed: 1})
	fs := blobfs.New(blob.New(c, blob.Config{ChunkSize: 1 << 20, Replication: 1}))
	if err := fs.Mkdir(storage.NewContext(), "/ior"); err != nil {
		t.Fatal(err)
	}
	return fs
}

func small() Params {
	return Params{
		Clients:      4,
		TransferSize: 4 << 10,
		BlockSize:    16 << 10,
		Segments:     2,
		ReadBack:     true,
	}
}

func TestSharedFileWithVerification(t *testing.T) {
	p := small()
	p.SharedFile = true
	res, err := Run(posixTarget(t), p)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBytes != 4*16*1024*2 {
		t.Fatalf("TotalBytes = %d", res.TotalBytes)
	}
	if res.WriteMBps <= 0 || res.ReadMBps <= 0 {
		t.Fatalf("bandwidths = %f / %f", res.WriteMBps, res.ReadMBps)
	}
	if !strings.Contains(res.String(), "shared-file") {
		t.Fatalf("String = %q", res.String())
	}
}

func TestFilePerProcessWithVerification(t *testing.T) {
	res, err := Run(posixTarget(t), small())
	if err != nil {
		t.Fatal(err)
	}
	if res.WriteMBps <= 0 || res.ReadMBps <= 0 {
		t.Fatalf("bandwidths = %f / %f", res.WriteMBps, res.ReadMBps)
	}
	if !strings.Contains(res.String(), "file-per-process") {
		t.Fatalf("String = %q", res.String())
	}
}

func TestOnBlobBackend(t *testing.T) {
	for _, shared := range []bool{false, true} {
		p := small()
		p.SharedFile = shared
		if _, err := Run(blobTarget(t), p); err != nil {
			t.Fatalf("shared=%v: %v", shared, err)
		}
	}
}

// File-per-process on relaxedfs works (sequential appends per file);
// shared-file does not (random writes) — exactly HDFS's envelope.
func TestRelaxedFSEnvelope(t *testing.T) {
	fs := relaxedfs.New(cluster.New(cluster.Config{Nodes: 9, Seed: 1}), relaxedfs.Config{})
	if err := fs.Mkdir(storage.NewContext(), "/ior"); err != nil {
		t.Fatal(err)
	}
	p := small()
	p.ReadBack = true
	if _, err := Run(fs, p); err != nil {
		t.Fatalf("file-per-process on relaxedfs: %v", err)
	}

	fs2 := relaxedfs.New(cluster.New(cluster.Config{Nodes: 9, Seed: 1}), relaxedfs.Config{})
	fs2.Mkdir(storage.NewContext(), "/ior")
	p.SharedFile = true
	if _, err := Run(fs2, p); err == nil {
		t.Fatal("shared-file strided writes succeeded on relaxedfs")
	}
}

func TestParamValidation(t *testing.T) {
	p := Params{TransferSize: 3000, BlockSize: 10000}
	if _, err := Run(posixTarget(t), p); !errors.Is(err, storage.ErrInvalidArg) {
		t.Fatalf("misaligned sizes: %v", err)
	}
}

func TestMissingWorkingDirSurfaces(t *testing.T) {
	fs := posixfs.NewStrict(cluster.New(cluster.Config{Nodes: 5, Seed: 1}))
	p := small()
	p.SharedFile = true
	if _, err := Run(fs, p); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("missing dir: %v", err)
	}
}

// More clients move more data and, under contention, cannot be faster
// per byte than a single client on the same backend.
func TestScalingSanity(t *testing.T) {
	run := func(clients int) *Result {
		p := small()
		p.Clients = clients
		p.SharedFile = true
		res, err := Run(posixTarget(t), p)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	one := run(1)
	eight := run(8)
	if eight.TotalBytes != 8*one.TotalBytes {
		t.Fatalf("bytes: %d vs %d", eight.TotalBytes, one.TotalBytes)
	}
	if eight.WriteTime < one.WriteTime {
		t.Fatalf("8 clients finished faster than 1: %v vs %v (contention missing)",
			eight.WriteTime, one.WriteTime)
	}
}
