// Package ior implements an IOR-style parallel I/O benchmark — the
// standard HPC storage benchmark shape — against any storage.FileSystem.
// It drives N client processes writing and reading segmented/strided
// patterns, either to one shared file or to one file per process, and
// reports virtual-time bandwidths.
//
// The pattern follows IOR's model: the file is divided into segments; each
// segment holds one contiguous block per client; blocks are written in
// transferSize units. With a shared file this produces the interleaved
// access pattern parallel file systems are famous for struggling with.
package ior

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/storage"
)

// Params configures one benchmark run.
type Params struct {
	// Clients is the number of concurrent client processes. Default 8.
	Clients int
	// TransferSize is the size of each I/O call. Default 64 KiB.
	TransferSize int
	// BlockSize is the contiguous region each client owns per segment;
	// must be a multiple of TransferSize. Default 1 MiB.
	BlockSize int
	// Segments is the number of segments. Default 4.
	Segments int
	// SharedFile selects one shared file (true) or file-per-process.
	SharedFile bool
	// ReadBack adds a read phase over the written data, with verification.
	ReadBack bool
	// Dir is the working directory; it must exist. Default "/ior".
	Dir string
}

func (p Params) withDefaults() (Params, error) {
	if p.Clients <= 0 {
		p.Clients = 8
	}
	if p.TransferSize <= 0 {
		p.TransferSize = 64 << 10
	}
	if p.BlockSize <= 0 {
		p.BlockSize = 1 << 20
	}
	if p.Segments <= 0 {
		p.Segments = 4
	}
	if p.Dir == "" {
		p.Dir = "/ior"
	}
	if p.BlockSize%p.TransferSize != 0 {
		return p, fmt.Errorf("ior: block size %d not a multiple of transfer size %d: %w",
			p.BlockSize, p.TransferSize, storage.ErrInvalidArg)
	}
	return p, nil
}

// Result reports one run.
type Result struct {
	Params     Params
	TotalBytes int64
	WriteTime  time.Duration
	ReadTime   time.Duration
	WriteMBps  float64
	ReadMBps   float64
}

// String renders an IOR-style summary line.
func (r *Result) String() string {
	mode := "file-per-process"
	if r.Params.SharedFile {
		mode = "shared-file"
	}
	s := fmt.Sprintf("ior %-17s clients=%-3d xfer=%-8d block=%-8d segs=%-2d write=%8.1f MB/s",
		mode, r.Params.Clients, r.Params.TransferSize, r.Params.BlockSize,
		r.Params.Segments, r.WriteMBps)
	if r.Params.ReadBack {
		s += fmt.Sprintf("  read=%8.1f MB/s", r.ReadMBps)
	}
	return s
}

// fill produces a verifiable pattern byte for (client, absolute offset).
func fill(client int, off int64) byte {
	return byte(int64(client+1)*31 + off*7)
}

// Run executes the benchmark. The working directory must already exist.
func Run(fs storage.FileSystem, p Params) (*Result, error) {
	p, err := p.withDefaults()
	if err != nil {
		return nil, err
	}
	res := &Result{Params: p}
	perClient := int64(p.BlockSize) * int64(p.Segments)
	res.TotalBytes = perClient * int64(p.Clients)

	// A shared file is created up front (IOR's open phase); per-process
	// files are created by their writers, as IOR's O_CREAT open does.
	if p.SharedFile {
		setup := storage.NewContext()
		h, err := fs.Create(setup, p.sharedPath())
		if err != nil {
			return nil, fmt.Errorf("ior: create shared file: %w", err)
		}
		if err := h.Close(setup); err != nil {
			return nil, err
		}
	}

	// Write phase.
	writeTime, err := p.phase(fs, true, func(client int, ctx *storage.Context, h storage.Handle) error {
		buf := make([]byte, p.TransferSize)
		for seg := 0; seg < p.Segments; seg++ {
			base := p.offset(client, seg)
			for t := 0; t < p.BlockSize/p.TransferSize; t++ {
				off := base + int64(t*p.TransferSize)
				for i := range buf {
					buf[i] = fill(client, off+int64(i))
				}
				if _, err := h.WriteAt(ctx, off, buf); err != nil {
					return err
				}
			}
		}
		return h.Sync(ctx)
	})
	if err != nil {
		return nil, fmt.Errorf("ior: write phase: %w", err)
	}
	res.WriteTime = writeTime
	res.WriteMBps = metrics.Throughput(res.TotalBytes, writeTime)

	if p.ReadBack {
		readTime, err := p.phase(fs, false, func(client int, ctx *storage.Context, h storage.Handle) error {
			buf := make([]byte, p.TransferSize)
			want := make([]byte, p.TransferSize)
			for seg := 0; seg < p.Segments; seg++ {
				base := p.offset(client, seg)
				for t := 0; t < p.BlockSize/p.TransferSize; t++ {
					off := base + int64(t*p.TransferSize)
					n, err := h.ReadAt(ctx, off, buf)
					if err != nil {
						return err
					}
					if n != p.TransferSize {
						return fmt.Errorf("short read %d/%d at %d", n, p.TransferSize, off)
					}
					for i := range want {
						want[i] = fill(client, off+int64(i))
					}
					if !bytes.Equal(buf, want) {
						return fmt.Errorf("verification failed at offset %d", off)
					}
				}
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("ior: read phase: %w", err)
		}
		res.ReadTime = readTime
		res.ReadMBps = metrics.Throughput(res.TotalBytes, readTime)
	}
	return res, nil
}

func (p Params) sharedPath() string      { return p.Dir + "/shared.dat" }
func (p Params) clientPath(c int) string { return fmt.Sprintf("%s/proc-%04d.dat", p.Dir, c) }

// offset computes the start of a client's block in a segment. Shared file:
// IOR's segmented layout (segment-major, client blocks interleaved within
// the segment). File-per-process: sequential within the client's own file.
func (p Params) offset(client, seg int) int64 {
	if p.SharedFile {
		return (int64(seg)*int64(p.Clients) + int64(client)) * int64(p.BlockSize)
	}
	return int64(seg) * int64(p.BlockSize)
}

// phase runs fn on every client concurrently (each opening — or, for a
// per-process write phase, creating — its target) and returns the makespan
// in virtual time.
func (p Params) phase(fs storage.FileSystem, writing bool, fn func(client int, ctx *storage.Context, h storage.Handle) error) (time.Duration, error) {
	contexts := make([]*storage.Context, p.Clients)
	errs := make([]error, p.Clients)
	var wg sync.WaitGroup
	for c := 0; c < p.Clients; c++ {
		contexts[c] = storage.NewContext()
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var h storage.Handle
			var err error
			if p.SharedFile {
				h, err = fs.Open(contexts[c], p.sharedPath())
			} else if writing {
				h, err = fs.Create(contexts[c], p.clientPath(c))
			} else {
				h, err = fs.Open(contexts[c], p.clientPath(c))
			}
			if err != nil {
				errs[c] = err
				return
			}
			defer h.Close(contexts[c])
			errs[c] = fn(c, contexts[c], h)
		}(c)
	}
	wg.Wait()
	var makespan time.Duration
	for c := 0; c < p.Clients; c++ {
		if errs[c] != nil {
			return 0, fmt.Errorf("client %d: %w", c, errs[c])
		}
		if t := contexts[c].Clock.Now(); t > makespan {
			makespan = t
		}
	}
	return makespan, nil
}
