// Package lint implements blobvet, a custom static-analysis suite that
// mechanically enforces the data plane's prose contracts: the dispatch
// pool's nested-wait rules, the single WAL append path, virtual-time
// determinism, errors.Is sentinel discipline, and the chunk-stripe
// snapshot-then-install locking rule. See README.md for the rule map.
//
// The suite is self-contained: it loads and type-checks packages with
// the standard library only (go/parser + go/types over `go list
// -export` data), so it needs no vendored dependencies.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// An Analyzer checks one contract rule across a type-checked package.
type Analyzer struct {
	Name string // short kebab-free name used in directives, e.g. "workerlatch"
	Doc  string // one-line description
	Run  func(pass *Pass)
}

// A Diagnostic is one reported contract violation.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// A Pass carries one package through one analyzer.
type Pass struct {
	Analyzer    *Analyzer
	Pkg         *Package
	diagnostics []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies every analyzer to every package and returns the surviving
// diagnostics sorted by position. Violations suppressed by a
// well-formed //blobvet:allow directive are dropped; malformed
// directives (no reason, unknown analyzer) are themselves reported so
// suppressions can't rot silently.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var out []Diagnostic
	for _, pkg := range pkgs {
		allows, bad := collectDirectives(pkg, known)
		out = append(out, bad...)
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg}
			a.Run(pass)
			for _, d := range pass.diagnostics {
				if !allows.suppresses(a.Name, d.Pos) {
					out = append(out, d)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// allowSet maps "file\x00analyzer" to the set of suppressed lines.
type allowSet map[string]map[int]bool

func (s allowSet) add(file, analyzer string, line int) {
	key := file + "\x00" + analyzer
	if s[key] == nil {
		s[key] = make(map[int]bool)
	}
	s[key][line] = true
}

func (s allowSet) suppresses(analyzer string, pos token.Position) bool {
	return s[pos.Filename+"\x00"+analyzer][pos.Line]
}

// collectDirectives scans a package for //blobvet:allow directives.
// Syntax: //blobvet:allow <analyzer> <reason...>. The reason is
// mandatory. A directive suppresses its own line and the next line;
// placed in a function's doc comment it suppresses the whole function.
func collectDirectives(pkg *Package, known map[string]bool) (allowSet, []Diagnostic) {
	allows := make(allowSet)
	var bad []Diagnostic
	for _, f := range pkg.Files {
		file := pkg.Fset.Position(f.Pos()).Filename

		// Directives inside function doc comments cover the body.
		funcRange := make(map[*ast.CommentGroup][2]int)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			funcRange[fd.Doc] = [2]int{
				pkg.Fset.Position(fd.Pos()).Line,
				pkg.Fset.Position(fd.End()).Line,
			}
		}

		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//blobvet:allow")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				pos := pkg.Fset.Position(c.Pos())
				if len(fields) == 0 || !known[fields[0]] {
					bad = append(bad, Diagnostic{
						Analyzer: "blobvet",
						Pos:      pos,
						Message:  "malformed //blobvet:allow: first word must name an analyzer",
					})
					continue
				}
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Analyzer: "blobvet",
						Pos:      pos,
						Message:  fmt.Sprintf("//blobvet:allow %s needs a reason", fields[0]),
					})
					continue
				}
				if r, ok := funcRange[cg]; ok {
					for line := r[0]; line <= r[1]; line++ {
						allows.add(file, fields[0], line)
					}
					continue
				}
				allows.add(file, fields[0], pos.Line)
				allows.add(file, fields[0], pos.Line+1)
			}
		}
	}
	return allows, bad
}
