package lint

// workerlatch enforces the dispatch.go nested-wait contract: code that
// runs on a pool worker — fanTask/funcJob/laneFeed run bodies, closures
// passed to parallelDo, and anything assigned to a task's fn field —
// must never acquire a per-blob descriptor latch and must never wait on
// the pool (parallelDo, ctxFan.join, laneFeed.Next, repairDrain).
// Either one re-enters the dispatch pool from inside it: a writer holds
// the latch across its own fan join, so a worker blocking on the latch
// (or on a nested join) closes the cycle and deadlocks under load.
//
// Caller-side code is exempt by construction: only the call graph
// reachable from task roots is checked, so writeLocked holding the
// latch across its own join stays legal.

import (
	"go/ast"
	"go/types"
)

// taskRootRecv names the receiver types whose run/replay methods
// execute on pool workers.
var taskRootRecv = map[string]bool{"fanTask": true, "funcJob": true, "laneFeed": true}

// poolWaits maps receiver type name -> method names that block on the
// dispatch pool. The "" key holds package-level functions.
var poolWaits = map[string]map[string]bool{
	"":         {"parallelDo": true},
	"ctxFan":   {"join": true},
	"laneFeed": {"Next": true},
	"Store":    {"repairDrain": true},
}

var workerLatchAnalyzer = &Analyzer{
	Name: "workerlatch",
	Doc:  "pool task bodies must not take descriptor latches or wait on the pool",
	Run:  runWorkerLatch,
}

func runWorkerLatch(pass *Pass) {
	pkg := pass.Pkg
	g := buildCallGraph(pkg)

	roots := taskRoots(g)
	if len(roots) == 0 {
		return
	}
	workers := g.reach(roots)

	for n := range workers {
		inspectShallow(n, func(x ast.Node) {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return
			}
			if isLatchAcquire(pkg, call) {
				pass.Reportf(call.Pos(),
					"descriptor latch acquired on a pool worker (in %s); writers hold the latch across fan joins, so a worker blocking here deadlocks the pool", n.name())
			}
			if name, ok := isPoolWait(pkg, call); ok {
				pass.Reportf(call.Pos(),
					"%s called on a pool worker (in %s); nested pool waits deadlock the dispatch pool — restructure with subFan/joinSubs or move the wait to the caller", name, n.name())
			}
		})
	}
}

// taskRoots collects every body that the dispatch pool executes.
func taskRoots(g *callGraph) []*funcNode {
	var roots []*funcNode

	// run/replay methods on the task types themselves.
	for _, n := range g.nodes {
		if n.decl == nil || n.decl.Recv == nil {
			continue
		}
		if name := n.decl.Name.Name; name != "run" && name != "replay" {
			continue
		}
		if recv := recvTypeName(n.decl); taskRootRecv[recv] {
			roots = append(roots, n)
		}
	}

	// Function values handed to the pool: parallelDo arguments and
	// anything assigned to a task's fn field or fn: literal key.
	for _, n := range g.nodes {
		inspectShallow(n, func(x ast.Node) {
			switch x := x.(type) {
			case *ast.CallExpr:
				if fn, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && fn.Name == "parallelDo" {
					for _, arg := range x.Args {
						if r := g.funcValueNode(arg); r != nil {
							roots = append(roots, r)
						}
					}
				}
			case *ast.AssignStmt:
				for i, lhs := range x.Lhs {
					sel, ok := lhs.(*ast.SelectorExpr)
					if !ok || sel.Sel.Name != "fn" || i >= len(x.Rhs) {
						continue
					}
					if recv, _ := namedRecv(g.pkg, sel); taskRootRecv[recv] {
						if r := g.funcValueNode(x.Rhs[i]); r != nil {
							roots = append(roots, r)
						}
					}
				}
			case *ast.CompositeLit:
				tv, ok := g.pkg.TypesInfo.Types[x]
				if !ok {
					return
				}
				named, ok := deref(tv.Type).(*types.Named)
				if !ok || !taskRootRecv[named.Obj().Name()] {
					return
				}
				for _, elt := range x.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "fn" {
						if r := g.funcValueNode(kv.Value); r != nil {
							roots = append(roots, r)
						}
					}
				}
			}
		})
	}
	return roots
}

// funcValueNode resolves an expression used as a function value (a
// literal or a reference to a same-package function) to its node.
func (g *callGraph) funcValueNode(e ast.Expr) *funcNode {
	switch e := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		return g.byLit[e]
	case *ast.Ident:
		if obj, ok := g.pkg.TypesInfo.Uses[e].(*types.Func); ok {
			return g.byObj[obj]
		}
	case *ast.SelectorExpr:
		if obj, ok := g.pkg.TypesInfo.Uses[e.Sel].(*types.Func); ok {
			return g.byObj[obj]
		}
	}
	return nil
}

// isLatchAcquire matches x.latch.Lock() / x.latch.RLock() where latch
// is a sync mutex field — the per-blob descriptor latch by contract.
func isLatchAcquire(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
		return false
	}
	field, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok || field.Sel.Name != "latch" {
		return false
	}
	return isSyncMutex(pkg, field)
}

func isSyncMutex(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.TypesInfo.Types[e]
	if !ok {
		return false
	}
	named, ok := deref(tv.Type).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	name := named.Obj().Name()
	return named.Obj().Pkg().Path() == "sync" && (name == "Mutex" || name == "RWMutex")
}

func isPoolWait(pkg *Package, call *ast.CallExpr) (string, bool) {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if poolWaits[""][fn.Name] {
			if _, ok := pkg.TypesInfo.Uses[fn].(*types.Func); ok {
				return fn.Name, true
			}
		}
	case *ast.SelectorExpr:
		recv, _ := namedRecv(pkg, fn)
		if poolWaits[recv][fn.Sel.Name] {
			return recv + "." + fn.Sel.Name, true
		}
	}
	return "", false
}

func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}
