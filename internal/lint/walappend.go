package lint

// walappend preserves the single-append-path invariant from the sharded
// WAL work: outside internal/wal itself, only the sanctioned wrappers —
// Store.walAppendLane, Store.walAppendBatch, and the checkpoint
// writer server.checkpointLane — may call the append methods of
// wal.Log/wal.MultiLog. Everything else must go through
// walAppendChunk/walAppendMeta/walBatch so that charge accounting,
// lane routing, and group-commit batching cannot be bypassed.

import (
	"go/ast"
)

// sanctionedAppenders lists the function names allowed to call wal
// append methods directly from outside the wal package.
var sanctionedAppenders = map[string]bool{
	"walAppendLane":  true,
	"walAppendBatch": true,
	"checkpointLane": true,
}

// walAppendMethods are the raw append entry points on wal types.
var walAppendMethods = map[string]bool{"Append": true, "AppendV": true, "AppendNV": true}

var walAppendAnalyzer = &Analyzer{
	Name: "walappend",
	Doc:  "only sanctioned sites may call wal.Log/wal.MultiLog append methods",
	Run:  runWalAppend,
}

func runWalAppend(pass *Pass) {
	pkg := pass.Pkg
	if lastElem(pkg.BasePath) == "wal" {
		return // the wal package is the append path
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			sanctioned := sanctionedAppenders[fd.Name.Name]
			ast.Inspect(fd.Body, func(x ast.Node) bool {
				call, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok || !walAppendMethods[sel.Sel.Name] {
					return true
				}
				recv, recvPkg := namedRecv(pkg, sel)
				if lastElem(recvPkg) != "wal" || (recv != "Log" && recv != "MultiLog") {
					return true
				}
				if !sanctioned {
					pass.Reportf(call.Pos(),
						"direct wal %s call outside the sanctioned append path; route through walAppendChunk/walAppendMeta/walBatch so lane routing and charge accounting stay on the single append path", sel.Sel.Name)
				}
				return true
			})
		}
	}
}

func lastElem(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
