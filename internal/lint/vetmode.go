package lint

// vetmode.go implements the cmd/go vettool side of the loader: `go vet
// -vettool=blobvet` hands the tool one JSON .cfg file per package with
// pre-resolved export data, so no `go list` child process is needed.

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"
)

// vetConfig mirrors the subset of cmd/go's vet config blobvet consumes.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// LoadVetUnit parses and type-checks the single package described by a
// cmd/go vet .cfg file. skip is true when the unit needs no analysis
// (fact-generation-only invocations, or tolerated typecheck failures).
func LoadVetUnit(cfgPath string) (pkg *Package, vetxOutput string, skip bool, err error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, "", false, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, "", false, fmt.Errorf("%s: %v", cfgPath, err)
	}
	if cfg.VetxOnly {
		return nil, cfg.VetxOutput, true, nil
	}

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, perr := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if perr != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, cfg.VetxOutput, true, nil
			}
			return nil, cfg.VetxOutput, false, perr
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		export, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(export)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, compiler, lookup)}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, cfg.VetxOutput, true, nil
		}
		return nil, cfg.VetxOutput, false, err
	}

	base := cfg.ImportPath
	if i := strings.Index(base, " ["); i >= 0 {
		base = base[:i]
	}
	return &Package{
		ImportPath: cfg.ImportPath,
		BasePath:   base,
		Dir:        cfg.Dir,
		Fset:       fset,
		Files:      files,
		Pkg:        tpkg,
		TypesInfo:  info,
		Stdlib:     cfg.Standard,
	}, cfg.VetxOutput, false, nil
}
