package lint

// load.go builds fully type-checked packages for the analyzers without
// depending on golang.org/x/tools. It shells out to `go list -deps -test
// -export` for dependency export data, then parses and type-checks the
// target packages from source with the stdlib gc importer. Test variants
// ("p [p.test]") are analyzed in place of their base package so _test.go
// files are covered; synthesized ".test" mains are skipped.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	Standard   bool
	DepOnly    bool
	ForTest    string
	GoFiles    []string
	ImportMap  map[string]string
	Module     *struct{ Path string }
}

// Package is one type-checked unit handed to each analyzer.
type Package struct {
	ImportPath string // as reported by go list, e.g. "repro/internal/blob [repro/internal/blob.test]"
	BasePath   string // variant suffix stripped
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	TypesInfo  *types.Info
	Stdlib     map[string]bool // import paths of standard-library packages in the dep graph
}

// Load type-checks the packages matching patterns under dir (a module
// root or subdirectory). It returns one Package per analysis target:
// every non-standard, in-module package, with test variants replacing
// their base compilation when present.
func Load(dir string, patterns ...string) ([]*Package, error) {
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	byPath := make(map[string]*listPkg, len(pkgs))
	stdlib := make(map[string]bool)
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
		if p.Standard {
			stdlib[p.ImportPath] = true
		}
	}

	// Pick analysis targets: roots only, skip synthesized test mains,
	// and prefer the "p [p.test]" variant over plain "p".
	hasVariant := make(map[string]bool)
	for _, p := range pkgs {
		if p.ForTest != "" && p.ImportPath == p.ForTest+" ["+p.ForTest+".test]" {
			hasVariant[p.ForTest] = true
		}
	}
	var targets []*listPkg
	for _, p := range pkgs {
		switch {
		case p.DepOnly || p.Standard || p.Module == nil:
			continue
		case p.Name == "main" && strings.HasSuffix(p.ImportPath, ".test"):
			continue // synthesized test binary
		case p.ForTest == "" && hasVariant[p.ImportPath]:
			continue // the [p.test] variant supersedes the base build
		case len(p.GoFiles) == 0:
			continue
		}
		targets = append(targets, p)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	var out []*Package
	for _, t := range targets {
		pkg, err := checkPackage(fset, t, byPath)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %w", t.ImportPath, err)
		}
		pkg.Stdlib = stdlib
		out = append(out, pkg)
	}
	return out, nil
}

func goList(dir string, patterns []string) ([]*listPkg, error) {
	args := []string{
		"list", "-deps", "-test", "-export",
		"-json=ImportPath,Export,Dir,GoFiles,ImportMap,Standard,DepOnly,ForTest,Name,Module",
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	var pkgs []*listPkg
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decode: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

func checkPackage(fset *token.FileSet, t *listPkg, byPath map[string]*listPkg) (*Package, error) {
	files := make([]*ast.File, 0, len(t.GoFiles))
	for _, name := range t.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	// The gc importer resolves each import through the target's
	// ImportMap (so test variants land on their rebuilt deps), then
	// reads the export data `go list -export` produced.
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := t.ImportMap[path]; ok {
			path = mapped
		}
		p, ok := byPath[path]
		if !ok || p.Export == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(p.Export)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
	}
	pkg, err := conf.Check(strings.TrimSuffix(t.ImportPath, " ["+t.ForTest+".test]"), fset, files, info)
	if err != nil {
		return nil, err
	}
	base := t.ImportPath
	if i := strings.Index(base, " ["); i >= 0 {
		base = base[:i]
	}
	return &Package{
		ImportPath: t.ImportPath,
		BasePath:   base,
		Dir:        t.Dir,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		TypesInfo:  info,
	}, nil
}
