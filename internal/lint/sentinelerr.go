package lint

// sentinelerr enforces errors.Is discipline for the module's error
// sentinels (storage.ErrUnavailable, storage.ErrStaleHandle,
// wal.ErrCorrupt, blob.ErrLastServer, ...). The data plane wraps these
// with %w to attach node and lane context, so a raw == or != against
// the sentinel silently stops matching the moment a wrap is added on
// some path. Stdlib sentinels (io.EOF and friends) keep their
// documented ==-comparability and stay allowed.

import (
	"go/ast"
	"go/token"
	"go/types"
)

var sentinelErrAnalyzer = &Analyzer{
	Name: "sentinelerr",
	Doc:  "module error sentinels must be matched with errors.Is, not == / !=",
	Run:  runSentinelErr,
}

func runSentinelErr(pass *Pass) {
	pkg := pass.Pkg
	for _, f := range pkg.Files {
		ast.Inspect(f, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.BinaryExpr:
				if x.Op != token.EQL && x.Op != token.NEQ {
					return true
				}
				for _, side := range []ast.Expr{x.X, x.Y} {
					if v := moduleSentinel(pkg, side); v != nil {
						pass.Reportf(x.Pos(),
							"%s compared with %s: module sentinels may arrive wrapped, use errors.Is", sentinelName(v), x.Op)
					}
				}
			case *ast.SwitchStmt:
				if x.Tag == nil {
					return true
				}
				tv, ok := pkg.TypesInfo.Types[x.Tag]
				if !ok || !isErrorType(tv.Type) {
					return true
				}
				for _, stmt := range x.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if v := moduleSentinel(pkg, e); v != nil {
							pass.Reportf(e.Pos(),
								"switch on err matches %s by identity: module sentinels may arrive wrapped, use errors.Is", sentinelName(v))
						}
					}
				}
			}
			return true
		})
	}
}

// moduleSentinel reports whether e references a package-level error
// variable declared outside the standard library.
func moduleSentinel(pkg *Package, e ast.Expr) *types.Var {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil
	}
	v, ok := pkg.TypesInfo.Uses[id].(*types.Var)
	if !ok || v.IsField() || v.Pkg() == nil || !isErrorType(v.Type()) {
		return nil
	}
	if v.Parent() != v.Pkg().Scope() {
		return nil // local variable, e.g. the err being tested
	}
	if pkg.Stdlib[v.Pkg().Path()] {
		return nil // io.EOF-class sentinels are documented ==-comparable
	}
	return v
}

func sentinelName(v *types.Var) string {
	if v.Pkg() != nil {
		return lastElem(v.Pkg().Path()) + "." + v.Name()
	}
	return v.Name()
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return types.Identical(t, errorType)
}
