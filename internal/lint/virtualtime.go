package lint

// virtualtime keeps the virtual-time-governed packages (blob, wal, sim,
// cluster) deterministic: all simulated runs with one seed must produce
// byte-identical logs and schedules. Three things break that silently:
// wall-clock reads (time.Now and friends), the process-global math/rand
// source, and map iteration order escaping into ordered output (WAL
// records, spawn order, result slices). Each is flagged here; the
// escape hatch for genuinely real-time plumbing is a
// //blobvet:allow virtualtime <reason> directive.

import (
	"go/ast"
	"go/types"
	"strconv"
)

// virtualTimePkgs names the governed packages (by final path element).
var virtualTimePkgs = map[string]bool{"blob": true, "wal": true, "sim": true, "cluster": true}

// forbiddenTimeFuncs are wall-clock and timer entry points in package
// time. Types and constants (time.Duration, time.Millisecond) stay
// allowed — they are units, not clock reads.
var forbiddenTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// orderedSinkFuncs are calls that serialize their invocation order:
// task spawns and WAL appends. Reaching one from inside a map range
// makes map order observable.
var orderedSinkFuncs = map[string]bool{
	"parallelDo": true, "spawn": true,
	"walAppendLane": true, "walAppendChunk": true, "walAppendMeta": true, "walAppendBatch": true,
	"Append": true, "AppendV": true, "AppendNV": true,
}

var virtualTimeAnalyzer = &Analyzer{
	Name: "virtualtime",
	Doc:  "virtual-time packages must not read wall clocks, use global rand, or leak map order",
	Run:  runVirtualTime,
}

func runVirtualTime(pass *Pass) {
	pkg := pass.Pkg
	if !virtualTimePkgs[lastElem(pkg.BasePath)] {
		return
	}

	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			path, _ := strconv.Unquote(imp.Path.Value)
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(),
					"math/rand in a virtual-time package: the global source is unseeded and unordered across runs; use sim.RNG (seeded SplitMix64)")
			}
		}
		ast.Inspect(f, func(x ast.Node) bool {
			id, ok := x.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pkg.TypesInfo.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if fn.Pkg().Path() == "time" && forbiddenTimeFuncs[fn.Name()] {
				pass.Reportf(id.Pos(),
					"time.%s reads the wall clock in a virtual-time package; use the sim clock so replays stay deterministic", fn.Name())
			}
			return true
		})
	}

	g := buildCallGraph(pkg)
	for _, n := range g.nodes {
		checkMapRanges(pass, g, n)
	}
}

// checkMapRanges flags map-range loops in one body whose iteration
// order can reach ordered output: an append to a slice that is not
// visibly sorted later in the same body, or a call to a spawn/WAL sink.
func checkMapRanges(pass *Pass, g *callGraph, n *funcNode) {
	pkg := g.pkg

	// Sort calls in this body, by the root identifier they sort.
	type sortCall struct {
		root string
		pos  ast.Node
	}
	var sorts []sortCall
	inspectShallow(n, func(x ast.Node) {
		call, ok := x.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return
		}
		if id, ok := sel.X.(*ast.Ident); ok {
			if p, ok := pkg.TypesInfo.Uses[id].(*types.PkgName); ok {
				path := p.Imported().Path()
				if path == "sort" || path == "slices" {
					sorts = append(sorts, sortCall{rootIdent(call.Args[0]), call})
				}
			}
		}
	})
	sortedLater := func(root string, after ast.Node) bool {
		for _, s := range sorts {
			if s.root == root && s.pos.Pos() > after.End() {
				return true
			}
		}
		return false
	}

	inspectShallow(n, func(x ast.Node) {
		rng, ok := x.(*ast.RangeStmt)
		if !ok {
			return
		}
		tv, ok := pkg.TypesInfo.Types[rng.X]
		if !ok {
			return
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return
		}
		// Walk the loop body without entering nested literals (a
		// literal spawned per iteration runs later, but the spawn
		// itself is the ordered sink and is caught as a call).
		ast.Inspect(rng.Body, func(y ast.Node) bool {
			if _, ok := y.(*ast.FuncLit); ok {
				return false
			}
			call, ok := y.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fn := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				if fn.Name == "append" && len(call.Args) > 0 {
					if _, isBuiltin := pkg.TypesInfo.Uses[fn].(*types.Builtin); isBuiltin {
						// A rootless target (append([]byte(nil), ...))
						// builds a fresh value per iteration; no shared
						// ordered structure observes map order.
						root := rootIdent(call.Args[0])
						if root != "" && !sortedLater(root, rng) {
							pass.Reportf(call.Pos(),
								"append to %q inside a map range with no later sort: map order becomes output order; iterate sorted keys or sort the result", root)
						}
					}
				} else if orderedSinkFuncs[fn.Name] {
					pass.Reportf(call.Pos(),
						"%s inside a map range: map iteration order reaches an ordered sink (spawn/WAL order); iterate a sorted key slice instead", fn.Name)
				}
			case *ast.SelectorExpr:
				if orderedSinkFuncs[fn.Sel.Name] {
					pass.Reportf(call.Pos(),
						"%s inside a map range: map iteration order reaches an ordered sink (spawn/WAL order); iterate a sorted key slice instead", fn.Sel.Name)
				}
			}
			return true
		})
	})
}

// rootIdent returns the leftmost identifier of an lvalue-ish
// expression: results[i] -> results, b.specs[i] -> b.
func rootIdent(e ast.Expr) string {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x.Name
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return ""
		}
	}
}
