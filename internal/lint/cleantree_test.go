package lint

// cleantree_test pins the acceptance bar for the suite itself: the real
// module tree — every package, test variants included — passes all
// analyzers with zero diagnostics. A future change that violates a
// contract fails this test (and scripts/lint.sh, and the blobvet stage
// of benchcheck.sh) instead of deadlocking a chaos run.

import "testing"

func TestRealTreeClean(t *testing.T) {
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; loader is dropping targets", len(pkgs))
	}
	for _, d := range Run(pkgs, Analyzers()) {
		t.Errorf("%s", d)
	}
}
