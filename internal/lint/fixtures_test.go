package lint

// fixtures_test runs each analyzer over its fixture packages under
// testdata/ (a self-contained module) and matches the produced
// diagnostics against `// want "regexp"` comments, analysistest-style:
// every want must be hit and every diagnostic must be wanted, so the
// fixtures prove both that an analyzer fires on violations and that it
// stays silent on the sanctioned patterns.

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
)

var wantPatternRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

func TestFixtures(t *testing.T) {
	pkgs, err := Load("testdata", "./...")
	if err != nil {
		t.Fatal(err)
	}
	byBase := make(map[string]*Package)
	for _, p := range pkgs {
		byBase[p.BasePath] = p
	}

	cases := []struct {
		name     string
		analyzer string
		pkgs     []string
		// extra diagnostics expected by message substring instead of a
		// want comment (used where the diagnostic lands on a line that
		// cannot carry one, e.g. a directive's own line).
		extra []string
	}{
		{"workerlatch", "workerlatch", []string{"fixture/workerlatch"}, nil},
		{"walappend", "walappend", []string{"fixture/wal", "fixture/appender"}, nil},
		{"virtualtime", "virtualtime", []string{"fixture/cluster", "fixture/notvirtual"}, nil},
		{"directives", "virtualtime", []string{"fixture/sim"}, []string{"needs a reason"}},
		{"sentinelerr", "sentinelerr", []string{"fixture/storage", "fixture/app"}, nil},
		{"stripelock", "stripelock", []string{"fixture/stripe"}, nil},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := ByName(tc.analyzer)
			if a == nil {
				t.Fatalf("no analyzer %q", tc.analyzer)
			}
			var selected []*Package
			for _, path := range tc.pkgs {
				p := byBase[path]
				if p == nil {
					t.Fatalf("fixture package %s not loaded", path)
				}
				selected = append(selected, p)
			}
			checkFixture(t, selected, a, tc.extra)
		})
	}
}

type wantPat struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

func checkFixture(t *testing.T, pkgs []*Package, a *Analyzer, extra []string) {
	t.Helper()

	type lineKey struct {
		file string
		line int
	}
	wants := make(map[lineKey][]*wantPat)
	total := 0
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					idx := strings.Index(c.Text, "// want ")
					if idx < 0 {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, tok := range wantPatternRe.FindAllString(c.Text[idx+len("// want"):], -1) {
						pat := tok
						if pat[0] == '"' {
							if u, err := strconv.Unquote(pat); err == nil {
								pat = u
							}
						} else {
							pat = strings.Trim(pat, "`")
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
						}
						key := lineKey{pos.Filename, pos.Line}
						wants[key] = append(wants[key], &wantPat{re: re, raw: pat})
						total++
					}
				}
			}
		}
	}
	if total == 0 && len(extra) == 0 {
		t.Fatal("fixture has no want comments; the test would vacuously pass")
	}

	extraLeft := append([]string(nil), extra...)
	for _, d := range Run(pkgs, []*Analyzer{a}) {
		key := lineKey{d.Pos.Filename, d.Pos.Line}
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if matched {
			continue
		}
		for i, sub := range extraLeft {
			if strings.Contains(d.Message, sub) {
				extraLeft = append(extraLeft[:i], extraLeft[i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", key.file, key.line, w.raw)
			}
		}
	}
	for _, sub := range extraLeft {
		t.Errorf("expected a diagnostic containing %q, got none", sub)
	}
}
