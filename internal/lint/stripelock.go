package lint

// stripelock enforces the repair.go snapshot-then-install rule: never
// hold two chunk-stripe locks at once. Cross-stripe work must copy what
// it needs under the first stripe's lock, release it, and only then
// take the second — otherwise two repairs crossing opposite stripes
// deadlock. The check is flow-insensitive but call-aware: acquiring a
// stripe lock (st.mu.Lock/RLock on a chunkStripe) while any stripe lock
// is held is flagged, as is calling a function that (transitively)
// acquires one. Callbacks invoked under a stripe lock (forEachChunk,
// forEachDebt) are analyzed as if they start with the lock held.

import (
	"go/ast"
	"go/types"
)

var stripeLockAnalyzer = &Analyzer{
	Name: "stripelock",
	Doc:  "never hold two chunk-stripe locks simultaneously (snapshot-then-install)",
	Run:  runStripeLock,
}

func runStripeLock(pass *Pass) {
	pkg := pass.Pkg
	g := buildCallGraph(pkg)

	// acquires: nodes that take a stripe lock anywhere, transitively.
	acquires := g.reverseClosure(func(n *funcNode) bool {
		found := false
		inspectShallow(n, func(x ast.Node) {
			if call, ok := x.(*ast.CallExpr); ok {
				if kind := stripeLockOp(pkg, call); kind == lockAcquire {
					found = true
				}
			}
		})
		return found
	})
	if len(acquires) == 0 {
		return
	}

	// underLock: nodes that call one of their own func-typed
	// parameters while holding a stripe lock (callback-under-lock).
	underLock := make(map[*funcNode]bool)
	for _, n := range g.nodes {
		scanHeld(pkg, g, n, 0, acquires, nil, func(call *ast.CallExpr) {
			if callsOwnFuncParam(pkg, n, call) {
				underLock[n] = true
			}
		})
	}

	report := func(call *ast.CallExpr, what string) {
		pass.Reportf(call.Pos(),
			"%s while a chunk-stripe lock is already held; snapshot under the first stripe, release it, then install (two held stripes deadlock crossing repairs)", what)
	}
	for _, n := range g.nodes {
		scanHeld(pkg, g, n, 0, acquires, report, nil)
		// Literal callbacks handed to an under-lock caller begin life
		// with that stripe lock held.
		inspectShallow(n, func(x ast.Node) {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return
			}
			callee := g.calleeNode(call)
			if callee == nil || !underLock[callee] {
				return
			}
			for _, arg := range call.Args {
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					if ln := g.byLit[lit]; ln != nil {
						scanHeld(pkg, g, ln, 1, acquires, report, nil)
					}
				}
			}
		})
	}
}

// scanHeld walks n's body in source order tracking how many stripe
// locks are held, invoking report on a second acquisition (direct or
// via a call into the acquires set) and onCall on every call while
// held. Deferred unlocks do not lower the count: they run at return,
// so the lock is held for the rest of the body.
func scanHeld(pkg *Package, g *callGraph, n *funcNode, held int, acquires map[*funcNode]bool, report func(*ast.CallExpr, string), onCall func(*ast.CallExpr)) {
	deferred := make(map[*ast.CallExpr]bool)
	inspectShallow(n, func(x ast.Node) {
		if d, ok := x.(*ast.DeferStmt); ok {
			deferred[d.Call] = true
		}
	})
	inspectShallow(n, func(x ast.Node) {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return
		}
		switch stripeLockOp(pkg, call) {
		case lockAcquire:
			if held > 0 && report != nil {
				report(call, "second chunk-stripe lock acquired")
			}
			held++
			return
		case lockRelease:
			if !deferred[call] && held > 0 {
				held--
			}
			return
		}
		if held > 0 {
			if onCall != nil {
				onCall(call)
			}
			if callee := g.calleeNode(call); callee != nil && acquires[callee] && report != nil {
				report(call, "call into a stripe-acquiring function")
			}
		}
	})
}

type lockOp int

const (
	lockNone lockOp = iota
	lockAcquire
	lockRelease
)

// stripeLockOp classifies st.mu.Lock()/Unlock() calls where st is a
// chunkStripe.
func stripeLockOp(pkg *Package, call *ast.CallExpr) lockOp {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockNone
	}
	var op lockOp
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = lockAcquire
	case "Unlock", "RUnlock":
		op = lockRelease
	default:
		return lockNone
	}
	field, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok || field.Sel.Name != "mu" {
		return lockNone
	}
	if recv, _ := namedRecv(pkg, field); recv != "chunkStripe" {
		return lockNone
	}
	return op
}

// callsOwnFuncParam reports whether call invokes a func-typed parameter
// of n directly (fn(...) where fn is one of n's parameters).
func callsOwnFuncParam(pkg *Package, n *funcNode, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	v, ok := pkg.TypesInfo.Uses[id].(*types.Var)
	if !ok {
		return false
	}
	if _, isSig := v.Type().Underlying().(*types.Signature); !isSig {
		return false
	}
	var params *ast.FieldList
	if n.decl != nil {
		params = n.decl.Type.Params
	} else {
		params = n.lit.Type.Params
	}
	if params == nil {
		return false
	}
	for _, f := range params.List {
		for _, name := range f.Names {
			if pkg.TypesInfo.Defs[name] == v {
				return true
			}
		}
	}
	return false
}
