package lint

// callgraph.go: a lightweight per-package static call graph over
// function declarations and function literals. It resolves only
// same-package calls — enough for the dispatch-pool and stripe-lock
// analyzers, whose contracts are package-local by design.

import (
	"go/ast"
	"go/types"
)

// a funcNode is one analyzable body: a FuncDecl or a FuncLit.
type funcNode struct {
	decl *ast.FuncDecl // nil for literals
	lit  *ast.FuncLit  // nil for declarations
	obj  *types.Func   // nil for literals
}

func (n *funcNode) body() *ast.BlockStmt {
	if n.decl != nil {
		return n.decl.Body
	}
	return n.lit.Body
}

func (n *funcNode) name() string {
	if n.decl != nil {
		return n.decl.Name.Name
	}
	return "func literal"
}

// callGraph indexes every function body in a package.
type callGraph struct {
	pkg     *Package
	nodes   []*funcNode
	byObj   map[*types.Func]*funcNode
	byLit   map[*ast.FuncLit]*funcNode
	callees map[*funcNode][]*funcNode // static same-package calls + nested literals
}

func buildCallGraph(pkg *Package) *callGraph {
	g := &callGraph{
		pkg:     pkg,
		byObj:   make(map[*types.Func]*funcNode),
		byLit:   make(map[*ast.FuncLit]*funcNode),
		callees: make(map[*funcNode][]*funcNode),
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
			n := &funcNode{decl: fd, obj: obj}
			g.nodes = append(g.nodes, n)
			if obj != nil {
				g.byObj[obj] = n
			}
			ast.Inspect(fd.Body, func(x ast.Node) bool {
				if lit, ok := x.(*ast.FuncLit); ok {
					ln := &funcNode{lit: lit}
					g.nodes = append(g.nodes, ln)
					g.byLit[lit] = ln
				}
				return true
			})
		}
	}
	for _, n := range g.nodes {
		g.callees[n] = g.directCallees(n)
	}
	return g
}

// directCallees returns same-package functions statically called from
// n's body, plus any function literals defined directly inside it
// (literals are conservatively assumed to run where they are defined,
// unless treated as task roots by the analyzer).
func (g *callGraph) directCallees(n *funcNode) []*funcNode {
	var out []*funcNode
	inspectShallow(n, func(x ast.Node) {
		switch x := x.(type) {
		case *ast.FuncLit:
			out = append(out, g.byLit[x])
		case *ast.CallExpr:
			if callee := g.calleeNode(x); callee != nil {
				out = append(out, callee)
			}
		}
	})
	return out
}

// calleeNode resolves a call to a same-package declared function or
// method, or to a function literal invoked in place.
func (g *callGraph) calleeNode(call *ast.CallExpr) *funcNode {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj, ok := g.pkg.TypesInfo.Uses[fn].(*types.Func); ok {
			return g.byObj[obj]
		}
	case *ast.SelectorExpr:
		if obj, ok := g.pkg.TypesInfo.Uses[fn.Sel].(*types.Func); ok {
			return g.byObj[obj]
		}
	case *ast.FuncLit:
		return g.byLit[fn]
	}
	return nil
}

// inspectShallow walks n's body but does not descend into nested
// function literals (they are separate nodes, linked as callees).
func inspectShallow(n *funcNode, visit func(ast.Node)) {
	var root ast.Node = n.body()
	ast.Inspect(root, func(x ast.Node) bool {
		if lit, ok := x.(*ast.FuncLit); ok && lit != n.lit {
			visit(lit)
			return false
		}
		if x != nil {
			visit(x)
		}
		return true
	})
}

// reach computes the transitive closure from roots over the call graph.
func (g *callGraph) reach(roots []*funcNode) map[*funcNode]bool {
	seen := make(map[*funcNode]bool)
	var walk func(*funcNode)
	walk = func(n *funcNode) {
		if n == nil || seen[n] {
			return
		}
		seen[n] = true
		for _, c := range g.callees[n] {
			walk(c)
		}
	}
	for _, r := range roots {
		walk(r)
	}
	return seen
}

// reverseClosure marks every node from which some seed predicate node
// is reachable (i.e. "calls, possibly transitively, a seed").
func (g *callGraph) reverseClosure(isSeed func(*funcNode) bool) map[*funcNode]bool {
	marked := make(map[*funcNode]bool)
	for _, n := range g.nodes {
		if isSeed(n) {
			marked[n] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.nodes {
			if marked[n] {
				continue
			}
			for _, c := range g.callees[n] {
				if marked[c] {
					marked[n] = true
					changed = true
					break
				}
			}
		}
	}
	return marked
}

// namedRecv reports the receiver's named-type name for a method call
// selector like x.Sel(...), following pointers.
func namedRecv(pkg *Package, sel *ast.SelectorExpr) (typeName, pkgPath string) {
	tv, ok := pkg.TypesInfo.Types[sel.X]
	if !ok {
		return "", ""
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	obj := named.Obj()
	path := ""
	if obj.Pkg() != nil {
		path = obj.Pkg().Path()
	}
	return obj.Name(), path
}
