package lint

// Analyzers returns the full blobvet suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		workerLatchAnalyzer,
		walAppendAnalyzer,
		virtualTimeAnalyzer,
		sentinelErrAnalyzer,
		stripeLockAnalyzer,
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
