package lint

// contract_test keeps the prose contract in internal/blob/dispatch.go
// and the analyzer suite from drifting apart: every documented rule
// bullet in the three contract sections must name the analyzer that
// enforces it — "(enforced: blobvet/<name>)" — or carry an explicit
// manual justification — "(enforced: manual: <reason>)". A rule added
// without either fails here; an annotation naming a deleted analyzer
// fails here too.

import (
	"os"
	"regexp"
	"strings"
	"testing"
)

var contractSections = []string{
	"# Concurrency contract",
	"# Recovery and checkpoint stages",
	"# Repair and resync stages",
	"# Migration stages",
}

var enforcedRe = regexp.MustCompile(`\(enforced: ([^)]+)\)`)
var analyzerRefRe = regexp.MustCompile(`blobvet/([a-z]+)`)

func TestContractRulesAnnotated(t *testing.T) {
	src, err := os.ReadFile("../blob/dispatch.go")
	if err != nil {
		t.Fatal(err)
	}

	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}

	type bullet struct {
		section string
		line    int
		text    string
	}
	var bullets []bullet
	sectionsSeen := make(map[string]bool)

	section := ""
	var cur *bullet
	flush := func() {
		if cur != nil {
			bullets = append(bullets, *cur)
			cur = nil
		}
	}
	for i, line := range strings.Split(string(src), "\n") {
		if strings.HasPrefix(line, "package ") {
			break // end of the package doc comment
		}
		trimmed := strings.TrimPrefix(line, "//")
		switch {
		case strings.HasPrefix(trimmed, " # "):
			flush()
			heading := strings.TrimSpace(trimmed)
			section = ""
			for _, s := range contractSections {
				if heading == s {
					section = s
					sectionsSeen[s] = true
				}
			}
		case section == "":
			// outside the three governed sections
		case strings.HasPrefix(trimmed, "   - "):
			flush()
			cur = &bullet{section: section, line: i + 1, text: strings.TrimPrefix(trimmed, "   - ")}
		case cur != nil && strings.HasPrefix(trimmed, "     "):
			cur.text += " " + strings.TrimSpace(trimmed)
		default:
			flush()
		}
	}
	flush()

	for _, s := range contractSections {
		if !sectionsSeen[s] {
			t.Errorf("dispatch.go: contract section %q not found; if it was renamed, update this test and the README", s)
		}
	}
	if len(bullets) < 10 {
		t.Fatalf("parsed only %d contract bullets from dispatch.go; the parser or the doc layout changed", len(bullets))
	}

	referenced := make(map[string]bool)
	for _, b := range bullets {
		m := enforcedRe.FindStringSubmatch(b.text)
		if m == nil {
			t.Errorf("dispatch.go:%d: contract rule in %q has no (enforced: ...) annotation:\n  %.120s",
				b.line, b.section, b.text)
			continue
		}
		body := m[1]
		refs := analyzerRefRe.FindAllStringSubmatch(body, -1)
		if len(refs) == 0 {
			if !strings.HasPrefix(body, "manual: ") || len(strings.TrimPrefix(body, "manual: ")) < 10 {
				t.Errorf("dispatch.go:%d: annotation %q names no analyzer and has no manual justification", b.line, body)
			}
			continue
		}
		for _, r := range refs {
			if !known[r[1]] {
				t.Errorf("dispatch.go:%d: annotation references unknown analyzer %q", b.line, r[1])
			}
			referenced[r[1]] = true
		}
	}

	// The pool and lock rules are the reason this suite exists: the
	// three structural analyzers must each be carrying at least one
	// documented rule.
	for _, name := range []string{"workerlatch", "walappend", "stripelock"} {
		if !referenced[name] {
			t.Errorf("no contract rule is annotated with blobvet/%s; prose and enforcement have drifted", name)
		}
	}
}
