// Package app exercises the sentinelerr analyzer: raw ==/!= against
// module sentinels (imported or local) is flagged, while errors.Is,
// nil checks, and stdlib io sentinels stay allowed.
package app

import (
	"errors"
	"io"

	"fixture/storage"
)

var errLocal = errors.New("app: local sentinel")

func rawEq(err error) bool {
	return err == storage.ErrClosed // want `storage\.ErrClosed compared with ==`
}

func rawNeq(err error) bool {
	return err != storage.ErrUnavailable // want `storage\.ErrUnavailable compared with !=`
}

func rawLocal(err error) bool {
	return err == errLocal // want `app\.errLocal compared with ==`
}

func rawSwitch(err error) string {
	switch err {
	case storage.ErrClosed: // want `switch on err matches storage\.ErrClosed by identity`
		return "closed"
	case nil:
		return ""
	}
	return "other"
}

// viaErrorsIs is the required idiom — silent.
func viaErrorsIs(err error) bool {
	return errors.Is(err, storage.ErrClosed)
}

// stdlibEOF: io.EOF is documented ==-comparable — silent.
func stdlibEOF(err error) bool {
	return err == io.EOF || err == io.ErrUnexpectedEOF
}

func nilCheck(err error) bool {
	return err != nil
}
