// Package appender exercises the walappend analyzer: the sanctioned
// wrapper names (walAppendLane, walAppendBatch, checkpointLane) may
// call wal append methods directly; everything else must not.
package appender

import "fixture/wal"

type charge struct{}

type server struct{ wal *wal.MultiLog }

type Store struct{}

// walAppendLane is the single charged append path — sanctioned.
func (s *Store) walAppendLane(cg *charge, sv *server, lane int, t wal.RecordType, header, data []byte) {
	sv.wal.AppendV(lane, t, header, data)
}

// walAppendBatch is the group-commit batch path — sanctioned.
func (s *Store) walAppendBatch(cg *charge, sv *server, lane int, specs []wal.AppendVSpec) {
	sv.wal.AppendNV(lane, specs)
}

// checkpointLane streams a checkpoint into its private lane — sanctioned.
func (sv *server) checkpointLane(lane int, t wal.RecordType, payload []byte) {
	sv.wal.AppendV(lane, t, payload, nil)
}

// rogueAppend bypasses lane routing and charge accounting.
func rogueAppend(sv *server) {
	sv.wal.AppendV(0, 0, nil, nil) // want `direct wal AppendV call outside the sanctioned append path`
}

func rogueBatch(sv *server, specs []wal.AppendVSpec) {
	sv.wal.AppendNV(0, specs) // want `direct wal AppendNV call outside the sanctioned append path`
}

func rogueLog(l *wal.Log) {
	l.Append(0, nil) // want `direct wal Append call outside the sanctioned append path`
}

// viaWrapper uses the sanctioned path — silent.
func viaWrapper(s *Store, sv *server) {
	s.walAppendLane(nil, sv, 0, 0, nil, nil)
}
