// Package wal is a stub of the real WAL surface: the append entry
// points the walappend analyzer polices. Inside the wal package itself
// appends are, of course, allowed.
package wal

type RecordType uint8

type AppendVSpec struct {
	Type    RecordType
	Payload []byte
}

type Log struct{ n int64 }

func (l *Log) Append(t RecordType, b []byte) (int64, int, error) {
	l.n++
	return l.n, len(b), nil
}

type MultiLog struct{ lanes []Log }

func (m *MultiLog) AppendV(lane int, t RecordType, header, data []byte) (int64, int, error) {
	return m.lanes[lane].Append(t, header)
}

func (m *MultiLog) AppendNV(lane int, specs []AppendVSpec) (int64, int, error) {
	var last int64
	for _, sp := range specs {
		last, _, _ = m.lanes[lane].Append(sp.Type, sp.Payload)
	}
	return last, len(specs), nil
}
