// Package notvirtual is outside the virtual-time-governed set: the
// same constructs that are violations in blob/wal/sim/cluster are fine
// here, and the analyzer must stay silent.
package notvirtual

import "time"

func wallClock() int64 {
	return time.Now().UnixNano()
}

func order(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
