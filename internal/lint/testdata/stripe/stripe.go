// Package stripe exercises the stripelock analyzer: the
// snapshot-then-install rule forbids holding two chunk-stripe locks at
// once, directly, through a callee, or inside a callback run under a
// stripe lock.
package stripe

import "sync"

type chunkStripe struct {
	mu sync.Mutex
	m  map[int][]byte
}

type server struct{ stripes [4]chunkStripe }

func (sv *server) stripe(i int) *chunkStripe { return &sv.stripes[i] }

// moveGood is snapshot-then-install: copy under the source stripe,
// release, then take the target — silent.
func moveGood(sv *server, from, to int) {
	src := sv.stripe(from)
	src.mu.Lock()
	data := append([]byte(nil), src.m[1]...)
	src.mu.Unlock()
	dst := sv.stripe(to)
	dst.mu.Lock()
	dst.m[1] = data
	dst.mu.Unlock()
}

// moveBad holds both stripes: two of these crossing opposite directions
// deadlock.
func moveBad(sv *server, from, to int) {
	src := sv.stripe(from)
	dst := sv.stripe(to)
	src.mu.Lock()
	dst.mu.Lock() // want `second chunk-stripe lock acquired`
	dst.m[1] = src.m[1]
	dst.mu.Unlock()
	src.mu.Unlock()
}

func lockHelper(sv *server, i int) {
	st := sv.stripe(i)
	st.mu.Lock()
	st.m[0] = nil
	st.mu.Unlock()
}

// callWhileHeld reaches a second stripe through a callee.
func callWhileHeld(sv *server, i, j int) {
	st := sv.stripe(i)
	st.mu.Lock()
	defer st.mu.Unlock()
	lockHelper(sv, j) // want `call into a stripe-acquiring function`
}

// forEachChunk runs cb under the stripe lock (the real tree's
// callback-under-lock pattern).
func forEachChunk(sv *server, i int, cb func(k int, v []byte)) {
	st := sv.stripe(i)
	st.mu.Lock()
	defer st.mu.Unlock()
	for k, v := range st.m {
		cb(k, v)
	}
}

// callbackBad: the literal runs with stripe i held, so taking stripe 1
// inside it holds two at once.
func callbackBad(sv *server) {
	forEachChunk(sv, 0, func(k int, v []byte) {
		sv.stripe(1).mu.Lock() // want `second chunk-stripe lock acquired`
		sv.stripe(1).mu.Unlock()
	})
}

// callbackGood only collects — silent.
func callbackGood(sv *server) [][]byte {
	var out [][]byte
	forEachChunk(sv, 0, func(k int, v []byte) {
		out = append(out, v)
	})
	return out
}

// sequentialStripes locks every stripe in turn, one at a time — silent.
func sequentialStripes(sv *server) int {
	total := 0
	for i := range sv.stripes {
		st := &sv.stripes[i]
		st.mu.Lock()
		total += len(st.m)
		st.mu.Unlock()
	}
	return total
}
