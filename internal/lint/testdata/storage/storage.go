// Package storage is a stub declaring module error sentinels for the
// sentinelerr fixture.
package storage

import "errors"

var (
	ErrClosed      = errors.New("storage: closed")
	ErrUnavailable = errors.New("storage: unavailable")
)
