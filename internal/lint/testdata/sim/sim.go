// Package sim exercises the //blobvet:allow directive mechanism in a
// governed package: a well-formed directive (analyzer + reason)
// suppresses its function; a reasonless one suppresses nothing and is
// itself reported.
package sim

import "time"

//blobvet:allow virtualtime
func reasonlessDirective() {
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock`
}

//blobvet:allow virtualtime the warm-up spin is real time by design; the sim clock is not running yet
func justifiedDirective() {
	time.Sleep(time.Millisecond)
}

func plainViolation() {
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock`
}
