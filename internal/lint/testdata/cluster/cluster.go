// Package cluster exercises the virtualtime analyzer in a governed
// package (the final path element selects enforcement): wall-clock
// reads, the global rand source, and map order leaking into ordered
// output are all flagged; duration constants and sorted iteration are
// not.
package cluster

import (
	"math/rand" // want `math/rand in a virtual-time package`
	"sort"
	"time"
)

// heartbeatEvery is a unit, not a clock read — allowed.
const heartbeatEvery = 50 * time.Millisecond

func wallClock() int64 {
	return time.Now().UnixNano() // want `time\.Now reads the wall clock`
}

func realSleep() {
	time.Sleep(heartbeatEvery) // want `time\.Sleep reads the wall clock`
}

func roll() int {
	return rand.Intn(6)
}

func parallelDo(n int, fn func(int)) {}

// leakOrder: the returned slice's order is the map's iteration order.
func leakOrder(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to "keys" inside a map range with no later sort`
	}
	return keys
}

// sortedOrder restores a total order before the slice escapes — silent.
func sortedOrder(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// spawnInOrder: spawn order is charge-replay order; map order must not
// pick it.
func spawnInOrder(m map[string]int) {
	for k := range m {
		k := k
		parallelDo(1, func(int) { _ = k }) // want `parallelDo inside a map range`
	}
}

// freshPerIteration: building a fresh value per iteration into an
// unordered sink (another map) observes no order — silent.
func freshPerIteration(m map[string][]byte) map[string][]byte {
	out := make(map[string][]byte, len(m))
	for k, v := range m {
		out[k] = append([]byte(nil), v...)
	}
	return out
}
