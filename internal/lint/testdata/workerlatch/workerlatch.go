// Package workerlatch exercises the workerlatch analyzer: miniature
// replicas of the dispatch-pool shapes (fanTask/funcJob/laneFeed,
// parallelDo, ctxFan, the descriptor latch) with positive cases the
// analyzer must flag and sanctioned caller-side patterns it must not.
package workerlatch

import "sync"

type descriptor struct {
	latch sync.RWMutex
	size  int64
}

type server struct {
	mu sync.RWMutex
}

type charge struct{}

type fanTask struct {
	fn  func(cg *charge) error
	err error
}

type ctxFan struct{}

func (f *ctxFan) task() *fanTask     { return &fanTask{} }
func (f *ctxFan) spawn(t *fanTask)   {}
func (f *ctxFan) join() (int, error) { return 0, nil }
func (t *fanTask) run(cg *charge)    { t.err = t.fn(cg) }
func parallelDo(n int, fn func(int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

type laneFeed struct{ ready chan struct{} }

// run is a decode-job root: consuming a sibling feed from inside it is
// a pool wait on a pool worker.
func (f *laneFeed) run(sibling *laneFeed) {
	f.ready <- struct{}{}
	sibling.Next() // want `laneFeed\.Next called on a pool worker`
}

func (f *laneFeed) Next() bool { <-f.ready; return true }

// taskTakesLatch: a pool task body acquiring the descriptor latch is the
// canonical deadlock (writers hold it across their own joins).
func taskTakesLatch(f *ctxFan, d *descriptor) {
	t := f.task()
	t.fn = func(cg *charge) error {
		d.latch.RLock() // want `descriptor latch acquired on a pool worker`
		defer d.latch.RUnlock()
		return nil
	}
	f.spawn(t)
}

// helperTakesLatch is only a violation because taskViaHelper makes it
// reachable from a task body: the whole call graph is checked.
func helperTakesLatch(d *descriptor) int64 {
	d.latch.RLock() // want `descriptor latch acquired on a pool worker`
	defer d.latch.RUnlock()
	return d.size
}

func taskViaHelper(f *ctxFan, d *descriptor) {
	t := f.task()
	t.fn = func(cg *charge) error {
		helperTakesLatch(d)
		return nil
	}
	f.spawn(t)
}

// taskNestedParallelDo: a nested pool wait inside a task saturates and
// deadlocks the pool.
func taskNestedParallelDo(f *ctxFan) {
	t := f.task()
	t.fn = func(cg *charge) error {
		parallelDo(2, func(i int) {}) // want `parallelDo called on a pool worker`
		return nil
	}
	f.spawn(t)
}

// taskNestedJoin: same rule through the fan's own join.
func taskNestedJoin(f *ctxFan) {
	t := f.task()
	t.fn = func(cg *charge) error {
		_, err := f.join() // want `ctxFan\.join called on a pool worker`
		return err
	}
	f.spawn(t)
}

// parallelArgTakesLatch: closures handed to parallelDo are task bodies.
func parallelArgTakesLatch(d *descriptor) {
	parallelDo(4, func(i int) {
		d.latch.Lock() // want `descriptor latch acquired on a pool worker`
		d.latch.Unlock()
	})
}

// mergeFeeds is the recovery caller: waiting on feeds from caller-side
// code is the sanctioned pattern and must stay silent.
func mergeFeeds(feeds []*laneFeed) {
	for _, f := range feeds {
		f.Next()
	}
}

// writeLocked mirrors the sanctioned writer pattern: the CALLER holds
// the latch across its own fan join. Nothing here may be flagged.
func writeLocked(f *ctxFan, d *descriptor) error {
	d.latch.Lock()
	defer d.latch.Unlock()
	t := f.task()
	t.fn = func(cg *charge) error { return nil }
	f.spawn(t)
	_, err := f.join()
	return err
}

// taskShortHold: short-hold locks (server maps, stripes) are explicitly
// allowed in task bodies — only the latch class is forbidden.
func taskShortHold(f *ctxFan, sv *server) {
	t := f.task()
	t.fn = func(cg *charge) error {
		sv.mu.RLock()
		defer sv.mu.RUnlock()
		return nil
	}
	f.spawn(t)
}
