package sim

import "sync"

// RNG is a small deterministic pseudo-random source (SplitMix64) safe for
// concurrent use. The repository must produce identical experiment outputs
// under a fixed seed, so all randomness flows through this type rather than
// math/rand's global state.
type RNG struct {
	mu    sync.Mutex
	state uint64
}

// NewRNG returns a generator seeded with seed. Seed zero is remapped to a
// fixed odd constant so the stream is never degenerate.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.mu.Lock()
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	r.mu.Unlock()
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a pseudo-random int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Fill fills b with pseudo-random bytes.
func (r *RNG) Fill(b []byte) {
	i := 0
	for i+8 <= len(b) {
		v := r.Uint64()
		b[i] = byte(v)
		b[i+1] = byte(v >> 8)
		b[i+2] = byte(v >> 16)
		b[i+3] = byte(v >> 24)
		b[i+4] = byte(v >> 32)
		b[i+5] = byte(v >> 40)
		b[i+6] = byte(v >> 48)
		b[i+7] = byte(v >> 56)
		i += 8
	}
	if i < len(b) {
		v := r.Uint64()
		for ; i < len(b); i++ {
			b[i] = byte(v)
			v >>= 8
		}
	}
}

// Fork derives an independent generator whose stream is a deterministic
// function of the parent's seed state. Use one fork per worker goroutine.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64() | 1)
}
