// Package sim provides the virtual-time substrate used by every simulated
// subsystem in this repository: a per-client virtual clock, contended
// resources with reservation-queue semantics, and a deterministic seeded
// random source.
//
// The model is deliberately first-order. An operation that consumes a
// resource (a disk, a NIC, a metadata CPU) reserves it for its service time;
// if the resource is busy the operation waits until it frees up. This
// reproduces queueing and contention effects — the phenomena the paper's
// performance arguments rest on — without a full discrete-event engine.
// Data movement is real (byte slices are actually copied), so functional
// correctness is genuine; only durations are synthetic.
package sim

import (
	"fmt"
	"sync"
	"time"
)

// Clock is a virtual clock owned by a single logical client (an MPI rank, a
// Spark task, a CLI invocation). It is advanced by the resources the client
// consumes.
//
// Every method is individually safe for concurrent use (the clock is
// internally locked), which makes forked child clocks safely mergeable: a
// worker goroutine may advance its child while the parent concurrently
// Joins other children. What locking cannot provide is a deterministic
// ORDER of advancement, so the ownership discipline still matters: give
// each concurrent worker its own child clock (see Fork), let exactly one
// goroutine at a time drive any given clock, and merge at a join point.
// Callers that need bit-for-bit reproducible times must additionally
// serialize the resource charging itself, the way internal/blob's
// dispatcher folds per-task cost ledgers at join in submission order.
type Clock struct {
	mu  sync.Mutex
	now time.Duration
}

// NewClock returns a clock starting at virtual time zero.
func NewClock() *Clock { return &Clock{} }

// NewClockAt returns a clock starting at the given virtual time.
func NewClockAt(t time.Duration) *Clock { return &Clock{now: t} }

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d. Negative durations are ignored:
// virtual time never runs backwards.
func (c *Clock) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

// AdvanceTo moves the clock forward to t if t is later than the current
// virtual time, and reports the resulting time.
func (c *Clock) AdvanceTo(t time.Duration) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t > c.now {
		c.now = t
	}
	return c.now
}

// Fork returns a new clock starting at the parent's current time. Use it to
// give each concurrent worker its own clock; join the workers back with
// Join.
func (c *Clock) Fork() *Clock { return NewClockAt(c.Now()) }

// Reset rewinds the clock to t. Unlike AdvanceTo it may move time
// backwards: it exists to recycle clocks through pools (a recycled child
// clock restarts at its new parent's current time), so it must only be
// called on clocks no other component still observes.
func (c *Clock) Reset(t time.Duration) {
	c.mu.Lock()
	c.now = t
	c.mu.Unlock()
}

// Join advances the clock to the latest time among the given clocks,
// modelling a synchronization point (barrier, task join) where the slowest
// participant determines completion. Join is safe to call while other
// goroutines concurrently advance or join this clock; each child is
// sampled atomically via Now.
func (c *Clock) Join(children ...*Clock) {
	for _, ch := range children {
		c.AdvanceTo(ch.Now())
	}
}

// String renders the current virtual time, for diagnostics.
func (c *Clock) String() string {
	return fmt.Sprintf("sim.Clock(%v)", c.Now())
}
