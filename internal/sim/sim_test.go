package sim

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	c := NewClock()
	if got := c.Now(); got != 0 {
		t.Fatalf("Now() = %v, want 0", got)
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	c.Advance(3 * time.Millisecond)
	c.Advance(2 * time.Millisecond)
	if got := c.Now(); got != 5*time.Millisecond {
		t.Fatalf("Now() = %v, want 5ms", got)
	}
}

func TestClockAdvanceNegativeIgnored(t *testing.T) {
	c := NewClockAt(time.Second)
	c.Advance(-time.Hour)
	if got := c.Now(); got != time.Second {
		t.Fatalf("Now() = %v, want 1s", got)
	}
}

func TestClockAdvanceToMonotonic(t *testing.T) {
	c := NewClockAt(10 * time.Millisecond)
	if got := c.AdvanceTo(5 * time.Millisecond); got != 10*time.Millisecond {
		t.Fatalf("AdvanceTo earlier time returned %v, want 10ms", got)
	}
	if got := c.AdvanceTo(20 * time.Millisecond); got != 20*time.Millisecond {
		t.Fatalf("AdvanceTo(20ms) = %v", got)
	}
}

func TestClockForkJoin(t *testing.T) {
	c := NewClockAt(time.Millisecond)
	a, b := c.Fork(), c.Fork()
	a.Advance(4 * time.Millisecond)
	b.Advance(9 * time.Millisecond)
	c.Join(a, b)
	if got := c.Now(); got != 10*time.Millisecond {
		t.Fatalf("Join: Now() = %v, want 10ms (slowest child)", got)
	}
}

func TestClockConcurrentAdvance(t *testing.T) {
	c := NewClock()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Advance(time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if got := c.Now(); got != 16000*time.Nanosecond {
		t.Fatalf("concurrent Advance lost updates: %v, want 16µs", got)
	}
}

func TestResourceIdleUse(t *testing.T) {
	r := NewResource("disk")
	end := r.Use(10*time.Microsecond, 5*time.Microsecond)
	if end != 15*time.Microsecond {
		t.Fatalf("Use on idle resource = %v, want 15µs", end)
	}
}

func TestResourceQueueing(t *testing.T) {
	r := NewResource("disk")
	// First client occupies [0, 100µs).
	if end := r.Use(0, 100*time.Microsecond); end != 100*time.Microsecond {
		t.Fatalf("first Use = %v", end)
	}
	// Second client arrives at t=10µs but must queue behind the first.
	if end := r.Use(10*time.Microsecond, 50*time.Microsecond); end != 150*time.Microsecond {
		t.Fatalf("queued Use = %v, want 150µs", end)
	}
	// Third client arrives after the resource is free again; no queueing.
	if end := r.Use(400*time.Microsecond, 10*time.Microsecond); end != 410*time.Microsecond {
		t.Fatalf("late Use = %v, want 410µs", end)
	}
}

func TestResourceNegativeServiceTime(t *testing.T) {
	r := NewResource("x")
	if end := r.Use(5, -3); end != 5 {
		t.Fatalf("negative service time: end = %v, want 5", end)
	}
}

func TestResourceStatsAndReset(t *testing.T) {
	r := NewResource("nic")
	r.Use(0, time.Millisecond)
	r.Use(0, time.Millisecond)
	busy, ops := r.Stats()
	if busy != 2*time.Millisecond || ops != 2 {
		t.Fatalf("Stats = (%v, %d), want (2ms, 2)", busy, ops)
	}
	r.Reset()
	busy, ops = r.Stats()
	if busy != 0 || ops != 0 || r.Peek() != 0 {
		t.Fatalf("Reset did not clear state: busy=%v ops=%d peek=%v", busy, ops, r.Peek())
	}
}

// Property: a resource never completes an operation before the client's own
// arrival time plus the service time, and total busy time equals the sum of
// service times.
func TestResourceConservationProperty(t *testing.T) {
	f := func(arrivals []uint32) bool {
		r := NewResource("p")
		var sum time.Duration
		for _, a := range arrivals {
			now := time.Duration(a % 1e6)
			s := time.Duration(a%997) * time.Microsecond
			end := r.Use(now, s)
			if end < now+s {
				return false
			}
			sum += s
		}
		busy, ops := r.Stats()
		return busy == sum && ops == int64(len(arrivals))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCostModelArithmetic(t *testing.T) {
	m := DefaultCostModel()
	if got := m.DiskTime(0); got != m.DiskSeek {
		t.Fatalf("DiskTime(0) = %v, want seek-only %v", got, m.DiskSeek)
	}
	// 200 MB at 200 MB/s = 1s + seek.
	if got := m.DiskTime(200_000_000); got != m.DiskSeek+time.Second {
		t.Fatalf("DiskTime(200MB) = %v", got)
	}
	if got := m.WireTime(1_000_000_000); got != m.NICLatency+time.Second {
		t.Fatalf("WireTime(1GB) = %v", got)
	}
	if got := m.MetaTime(3); got != 3*m.MetaOp {
		t.Fatalf("MetaTime(3) = %v", got)
	}
}

func TestCostModelMonotoneInBytes(t *testing.T) {
	m := DefaultCostModel()
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return m.DiskTime(x) <= m.DiskTime(y) && m.WireTime(x) <= m.WireTime(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced diverging streams")
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/64 identical values", same)
	}
}

func TestRNGZeroSeedUsable(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a degenerate stream")
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(13); v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d out of range", v)
		}
		if v := r.Int63n(1 << 40); v < 0 || v >= 1<<40 {
			t.Fatalf("Int63n out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of range", f)
		}
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGFill(t *testing.T) {
	r := NewRNG(9)
	for _, n := range []int{0, 1, 7, 8, 9, 64, 65} {
		b := make([]byte, n)
		r.Fill(b)
		if n >= 8 {
			allZero := true
			for _, v := range b {
				if v != 0 {
					allZero = false
					break
				}
			}
			if allZero {
				t.Fatalf("Fill(%d) produced all zeros", n)
			}
		}
	}
}

func TestRNGForkIndependence(t *testing.T) {
	parent := NewRNG(11)
	f1 := parent.Fork()
	f2 := parent.Fork()
	if f1.Uint64() == f2.Uint64() {
		t.Fatal("sibling forks produced identical first values")
	}
}

func TestRNGConcurrentSafety(t *testing.T) {
	r := NewRNG(3)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Uint64()
			}
		}()
	}
	wg.Wait()
}

// TestClockConcurrentMerge: forked child clocks are advanced by worker
// goroutines and joined back concurrently — the blob dispatcher's usage
// shape. Run under -race this pins the clock's internal locking; the final
// time must be the maximum any child reached.
func TestClockConcurrentMerge(t *testing.T) {
	parent := NewClock()
	parent.Advance(time.Second)
	var wg sync.WaitGroup
	children := make([]*Clock, 16)
	for i := range children {
		children[i] = parent.Fork()
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j <= i; j++ {
				children[i].Advance(time.Millisecond)
			}
			parent.Join(children[i])
		}(i)
	}
	wg.Wait()
	want := time.Second + 16*time.Millisecond
	if got := parent.Now(); got != want {
		t.Fatalf("concurrent join: parent = %v, want %v", got, want)
	}
}

// TestResourceConcurrentUseAccumulatesExactly: reservations from many
// goroutines must serialize without losing service time — the property the
// blob dispatcher's fold-at-join relies on when several client operations
// fold concurrently.
func TestResourceConcurrentUseAccumulatesExactly(t *testing.T) {
	r := NewResource("disk")
	const workers, each = 8, 500
	const service = 10 * time.Microsecond
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < each; j++ {
				r.Use(0, service)
			}
		}()
	}
	wg.Wait()
	busy, ops := r.Stats()
	if want := time.Duration(workers*each) * service; busy != want {
		t.Fatalf("busy = %v, want %v", busy, want)
	}
	if ops != workers*each {
		t.Fatalf("ops = %d, want %d", ops, workers*each)
	}
	if free := r.Peek(); free != time.Duration(workers*each)*service {
		t.Fatalf("nextFree = %v after back-to-back reservations", free)
	}
}
