package sim

import (
	"sync"
	"time"
)

// Resource models a serially shared device: a disk spindle, a NIC port, a
// metadata-server CPU. Clients reserve the resource for a service time; a
// reservation arriving while the resource is busy queues behind the earlier
// ones. The model is conservative (single server, FIFO by arrival order of
// the Use call), which is what Lustre MDS queueing and disk head contention
// look like at first order.
type Resource struct {
	name string
	mu   sync.Mutex
	// nextFree is the virtual time at which the resource becomes idle.
	nextFree time.Duration
	// busy accumulates total reserved service time, for utilization reports.
	busy time.Duration
	// ops counts reservations.
	ops int64
}

// NewResource returns an idle resource with the given diagnostic name.
func NewResource(name string) *Resource { return &Resource{name: name} }

// Name returns the resource's diagnostic name.
func (r *Resource) Name() string { return r.name }

// Use reserves the resource for service time s on behalf of a client whose
// virtual clock reads now. It returns the virtual completion time:
// max(now, nextFree) + s. The caller is responsible for advancing its clock
// to the returned time.
func (r *Resource) Use(now, s time.Duration) time.Duration {
	if s < 0 {
		s = 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	start := now
	if r.nextFree > start {
		start = r.nextFree
	}
	end := start + s
	r.nextFree = end
	r.busy += s
	r.ops++
	return end
}

// Peek reports the time at which the resource next becomes free, without
// reserving it.
func (r *Resource) Peek() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nextFree
}

// Stats reports the cumulative busy time and reservation count.
func (r *Resource) Stats() (busy time.Duration, ops int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.busy, r.ops
}

// Reset returns the resource to the idle state and clears statistics.
func (r *Resource) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextFree = 0
	r.busy = 0
	r.ops = 0
}

// CostModel converts operation shapes into service times. The zero value is
// unusable; construct with DefaultCostModel or fill every field.
type CostModel struct {
	// DiskSeek is the fixed per-operation disk cost.
	DiskSeek time.Duration
	// DiskBytesPerSec is sequential disk bandwidth.
	DiskBytesPerSec float64
	// NICLatency is the fixed per-message network cost (one traversal).
	NICLatency time.Duration
	// NICBytesPerSec is link bandwidth.
	NICBytesPerSec float64
	// MetaOp is the CPU cost of one metadata operation (lookup, lock grant,
	// permission check) on a server.
	MetaOp time.Duration
}

// DefaultCostModel returns the cost model documented in DESIGN.md §6:
// HDD-class disks, GbE-class network, 50µs metadata operations.
func DefaultCostModel() CostModel {
	return CostModel{
		DiskSeek:        100 * time.Microsecond,
		DiskBytesPerSec: 200e6,
		NICLatency:      25 * time.Microsecond,
		NICBytesPerSec:  1e9,
		MetaOp:          50 * time.Microsecond,
	}
}

// DiskTime returns the service time for a disk transfer of n bytes.
func (m CostModel) DiskTime(n int) time.Duration {
	return m.DiskSeek + bytesTime(n, m.DiskBytesPerSec)
}

// DiskAppendTime returns the service time for a sequential append of n
// bytes (journal/WAL writes): bandwidth only, no seek.
func (m CostModel) DiskAppendTime(n int) time.Duration {
	return bytesTime(n, m.DiskBytesPerSec)
}

// WireTime returns the service time for one network traversal of n bytes.
func (m CostModel) WireTime(n int) time.Duration {
	return m.NICLatency + bytesTime(n, m.NICBytesPerSec)
}

// MetaTime returns the service time for k metadata operations.
func (m CostModel) MetaTime(k int) time.Duration {
	return time.Duration(k) * m.MetaOp
}

func bytesTime(n int, bytesPerSec float64) time.Duration {
	if n <= 0 || bytesPerSec <= 0 {
		return 0
	}
	return time.Duration(float64(n) / bytesPerSec * float64(time.Second))
}
