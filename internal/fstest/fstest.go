// Package fstest is a reusable conformance suite for storage.FileSystem
// implementations. The backends differ deliberately — that is the paper's
// subject — so the suite is capability-driven: each backend declares which
// optional semantics it provides and the suite asserts exactly that
// envelope (each capability has a positive test AND a negative test, so a
// backend cannot silently over- or under-deliver), plus the common core
// every backend must share.
//
// Capability matrix — every registered backend × its declared envelope,
// asserted by TestConformanceMatrix (conformance_test.go) and used by the
// FuzzFSOps differential fuzzer to constrain script generation:
//
//	backend                RandW ImmVis PTrunc Perms ARen Sparse Large ConcH
//	posixfs (strict)         ✓     ✓      ✓      ✓     ✓    ✓      ✓     ✓
//	relaxedfs (HDFS-like)    –     –      –      –     –    –      ✓     –
//	blobfs (64 B chunks)     ✓     ✓      ✓      –     –    ✓      ✓     ✓
//	blobfs (8 MiB chunks)    ✓     ✓      ✓      –     –    ✓      ✓     ✓
//	mpiio over posixfs       ✓     –      ✓      ✓     ✓    ✓      ✓     ✓
//	mpiio over blobfs        ✓     –      ✓      –     –    ✓      ✓     ✓
//
// (RandW = RandomWrites, ImmVis = ImmediateVisibility, PTrunc =
// PartialTruncate, Perms = Permissions, ARen = AtomicRename, Sparse =
// SparseFiles, Large = LargeFiles, ConcH = ConcurrentHandles. The mpiio
// rows are the MPI-IO write-behind library driven through its
// storage.FileSystem adapter: deferred visibility is the MPI-IO standard's
// contract, everything else passes through to the inner backend.)
package fstest

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/storage"
)

// Capabilities describes a backend's semantic envelope.
type Capabilities struct {
	// RandomWrites: writes at arbitrary offsets (posixfs, blobfs yes;
	// relaxedfs no — append only).
	RandomWrites bool
	// ImmediateVisibility: a write is readable through other handles
	// before any sync/close (posixfs yes; relaxedfs no — visible on
	// hflush/close; blobfs yes; mpiio no — visible on sync/close, the
	// Section II-A semantics).
	ImmediateVisibility bool
	// PartialTruncate: truncation to arbitrary sizes (relaxedfs only
	// supports 0).
	PartialTruncate bool
	// Permissions: chmod actually gates access (posixfs only; blobfs keeps
	// modes client-side without enforcement).
	Permissions bool
	// AtomicRename: rename onto an existing file atomically replaces it
	// (POSIX). Backends without it reject an existing target with
	// ErrExists (HDFS-style rename, blobfs copy emulation).
	AtomicRename bool
	// SparseFiles: a write past EOF leaves a hole that reads as zeros and
	// counts toward the file size. Append-only backends reject the gap
	// write instead.
	SparseFiles bool
	// LargeFiles: a file spanning many placement units (chunks, blocks,
	// write-behind buffers) round-trips byte-for-byte through close and
	// reopen. Every current backend declares it; the gate exists so a
	// future size-capped backend can opt out explicitly.
	LargeFiles bool
	// ConcurrentHandles: several writable handles may be open on one file
	// at once (opens return writable handles). Backends without it hold a
	// single-writer lease: a second concurrent create is rejected and
	// opened handles are read-only.
	ConcurrentHandles bool
}

// New constructs a fresh, empty file system for one subtest.
type New func() storage.FileSystem

// Run executes the conformance suite.
func Run(t *testing.T, mk New, caps Capabilities) {
	t.Helper()
	t.Run("CreateReadBack", func(t *testing.T) { testCreateReadBack(t, mk) })
	t.Run("SequentialWriteAccumulates", func(t *testing.T) { testSequentialWrite(t, mk) })
	t.Run("OpenMissing", func(t *testing.T) { testOpenMissing(t, mk) })
	t.Run("CreateRequiresParent", func(t *testing.T) { testCreateRequiresParent(t, mk) })
	t.Run("StatFileAndDir", func(t *testing.T) { testStat(t, mk) })
	t.Run("MkdirDuplicate", func(t *testing.T) { testMkdirDuplicate(t, mk) })
	t.Run("RmdirNonEmpty", func(t *testing.T) { testRmdirNonEmpty(t, mk) })
	t.Run("ReadDirSortedImmediate", func(t *testing.T) { testReadDir(t, mk) })
	t.Run("UnlinkSemantics", func(t *testing.T) { testUnlink(t, mk) })
	t.Run("RenameFile", func(t *testing.T) { testRenameFile(t, mk) })
	t.Run("CloseIdempotenceErrors", func(t *testing.T) { testClose(t, mk) })
	t.Run("XattrRoundTrip", func(t *testing.T) { testXattr(t, mk) })
	t.Run("ReadAtEOF", func(t *testing.T) { testReadAtEOF(t, mk) })
	t.Run("EmptyPathRejected", func(t *testing.T) { testEmptyPath(t, mk) })

	if caps.RandomWrites {
		t.Run("RandomWrites", func(t *testing.T) { testRandomWrites(t, mk) })
	} else {
		t.Run("RandomWritesRejected", func(t *testing.T) { testRandomWritesRejected(t, mk) })
	}
	if caps.ImmediateVisibility {
		t.Run("ImmediateVisibility", func(t *testing.T) { testImmediateVisibility(t, mk) })
	} else {
		t.Run("DeferredVisibility", func(t *testing.T) { testDeferredVisibility(t, mk) })
	}
	if caps.PartialTruncate {
		t.Run("PartialTruncate", func(t *testing.T) { testPartialTruncate(t, mk) })
	} else {
		t.Run("TruncateToZeroOnly", func(t *testing.T) { testTruncateZeroOnly(t, mk) })
	}
	if caps.Permissions {
		t.Run("PermissionsEnforced", func(t *testing.T) { testPermissions(t, mk) })
	}
	if caps.AtomicRename {
		t.Run("AtomicRenameReplaces", func(t *testing.T) { testAtomicRename(t, mk, caps) })
	} else {
		t.Run("RenameTargetRejected", func(t *testing.T) { testRenameTargetRejected(t, mk) })
	}
	if caps.SparseFiles {
		t.Run("SparseHoles", func(t *testing.T) { testSparseHoles(t, mk) })
	} else {
		t.Run("SparseGapRejected", func(t *testing.T) { testSparseGapRejected(t, mk) })
	}
	if caps.LargeFiles {
		t.Run("LargeFileRoundTrip", func(t *testing.T) { testLargeFile(t, mk) })
	}
	if caps.ConcurrentHandles {
		t.Run("ConcurrentHandles", func(t *testing.T) { testConcurrentHandles(t, mk) })
	} else {
		t.Run("SingleWriterLease", func(t *testing.T) { testSingleWriterLease(t, mk) })
	}
}

func mustCreate(t *testing.T, fs storage.FileSystem, ctx *storage.Context, path string, data []byte) {
	t.Helper()
	h, err := fs.Create(ctx, path)
	if err != nil {
		t.Fatalf("create %s: %v", path, err)
	}
	if len(data) > 0 {
		if _, err := h.WriteAt(ctx, 0, data); err != nil {
			t.Fatalf("write %s: %v", path, err)
		}
	}
	if err := h.Close(ctx); err != nil {
		t.Fatalf("close %s: %v", path, err)
	}
}

func testCreateReadBack(t *testing.T, mk New) {
	fs := mk()
	ctx := storage.NewContext()
	payload := []byte("conformance payload")
	mustCreate(t, fs, ctx, "/f", payload)
	h, err := fs.Open(ctx, "/f")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close(ctx)
	got := make([]byte, len(payload))
	n, err := h.ReadAt(ctx, 0, got)
	if err != nil || n != len(payload) || !bytes.Equal(got, payload) {
		t.Fatalf("ReadAt = (%d, %v, %q)", n, err, got)
	}
}

func testSequentialWrite(t *testing.T, mk New) {
	fs := mk()
	ctx := storage.NewContext()
	h, err := fs.Create(ctx, "/seq")
	if err != nil {
		t.Fatal(err)
	}
	var off int64
	for i := 0; i < 10; i++ {
		chunk := bytes.Repeat([]byte{byte('a' + i)}, 10)
		n, err := h.WriteAt(ctx, off, chunk)
		if err != nil || n != 10 {
			t.Fatalf("chunk %d: (%d, %v)", i, n, err)
		}
		off += int64(n)
	}
	if err := h.Close(ctx); err != nil {
		t.Fatal(err)
	}
	info, err := fs.Stat(ctx, "/seq")
	if err != nil || info.Size != 100 {
		t.Fatalf("Stat = (%+v, %v)", info, err)
	}
}

func testOpenMissing(t *testing.T, mk New) {
	fs := mk()
	ctx := storage.NewContext()
	if _, err := fs.Open(ctx, "/ghost"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("open missing: %v", err)
	}
}

func testCreateRequiresParent(t *testing.T, mk New) {
	fs := mk()
	ctx := storage.NewContext()
	if _, err := fs.Create(ctx, "/no/such/dir/f"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("create without parent: %v", err)
	}
}

func testStat(t *testing.T, mk New) {
	fs := mk()
	ctx := storage.NewContext()
	if err := fs.Mkdir(ctx, "/d"); err != nil {
		t.Fatal(err)
	}
	mustCreate(t, fs, ctx, "/d/f", []byte("xyz"))
	info, err := fs.Stat(ctx, "/d/f")
	if err != nil || info.IsDir || info.Size != 3 || info.Name != "f" {
		t.Fatalf("file stat = (%+v, %v)", info, err)
	}
	info, err = fs.Stat(ctx, "/d")
	if err != nil || !info.IsDir {
		t.Fatalf("dir stat = (%+v, %v)", info, err)
	}
	if _, err := fs.Stat(ctx, "/missing"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("missing stat: %v", err)
	}
}

func testMkdirDuplicate(t *testing.T, mk New) {
	fs := mk()
	ctx := storage.NewContext()
	if err := fs.Mkdir(ctx, "/d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir(ctx, "/d"); !errors.Is(err, storage.ErrExists) {
		t.Fatalf("duplicate mkdir: %v", err)
	}
}

func testRmdirNonEmpty(t *testing.T, mk New) {
	fs := mk()
	ctx := storage.NewContext()
	fs.Mkdir(ctx, "/d")
	mustCreate(t, fs, ctx, "/d/f", []byte("1"))
	if err := fs.Rmdir(ctx, "/d"); !errors.Is(err, storage.ErrNotEmpty) {
		t.Fatalf("rmdir non-empty: %v", err)
	}
	if err := fs.Unlink(ctx, "/d/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rmdir(ctx, "/d"); err != nil {
		t.Fatalf("rmdir empty: %v", err)
	}
	if err := fs.Rmdir(ctx, "/d"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("rmdir gone: %v", err)
	}
}

func testReadDir(t *testing.T, mk New) {
	fs := mk()
	ctx := storage.NewContext()
	fs.Mkdir(ctx, "/d")
	fs.Mkdir(ctx, "/d/sub")
	mustCreate(t, fs, ctx, "/d/bb", nil)
	mustCreate(t, fs, ctx, "/d/aa", nil)
	entries, err := fs.ReadDir(ctx, "/d")
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		name  string
		isDir bool
	}{{"aa", false}, {"bb", false}, {"sub", true}}
	if len(entries) != len(want) {
		t.Fatalf("ReadDir = %v", entries)
	}
	for i, w := range want {
		if entries[i].Name != w.name || entries[i].IsDir != w.isDir {
			t.Fatalf("ReadDir = %v, want %v", entries, want)
		}
	}
	// Only immediate children.
	mustCreate(t, fs, ctx, "/d/sub/deep", nil)
	entries, _ = fs.ReadDir(ctx, "/d")
	if len(entries) != 3 {
		t.Fatalf("deep entry leaked: %v", entries)
	}
}

func testUnlink(t *testing.T, mk New) {
	fs := mk()
	ctx := storage.NewContext()
	mustCreate(t, fs, ctx, "/f", []byte("x"))
	if err := fs.Unlink(ctx, "/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Unlink(ctx, "/f"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("double unlink: %v", err)
	}
	fs.Mkdir(ctx, "/d")
	if err := fs.Unlink(ctx, "/d"); !errors.Is(err, storage.ErrIsDirectory) {
		t.Fatalf("unlink dir: %v", err)
	}
}

func testRenameFile(t *testing.T, mk New) {
	fs := mk()
	ctx := storage.NewContext()
	mustCreate(t, fs, ctx, "/old", []byte("content"))
	if err := fs.Rename(ctx, "/old", "/new"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat(ctx, "/old"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatal("source survived rename")
	}
	h, err := fs.Open(ctx, "/new")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close(ctx)
	buf := make([]byte, 7)
	if n, _ := h.ReadAt(ctx, 0, buf); string(buf[:n]) != "content" {
		t.Fatalf("renamed content = %q", buf[:n])
	}
	if err := fs.Rename(ctx, "/missing", "/x"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("rename missing: %v", err)
	}
}

func testClose(t *testing.T, mk New) {
	fs := mk()
	ctx := storage.NewContext()
	h, err := fs.Create(ctx, "/f")
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(ctx); !errors.Is(err, storage.ErrClosed) {
		t.Fatalf("double close: %v", err)
	}
	if _, err := h.ReadAt(ctx, 0, make([]byte, 1)); !errors.Is(err, storage.ErrClosed) {
		t.Fatalf("read after close: %v", err)
	}
	if _, err := h.WriteAt(ctx, 0, []byte("x")); !errors.Is(err, storage.ErrClosed) {
		t.Fatalf("write after close: %v", err)
	}
}

func testXattr(t *testing.T, mk New) {
	fs := mk()
	ctx := storage.NewContext()
	mustCreate(t, fs, ctx, "/f", nil)
	if _, err := fs.GetXattr(ctx, "/f", "user.k"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("absent xattr: %v", err)
	}
	if err := fs.SetXattr(ctx, "/f", "user.k", "v"); err != nil {
		t.Fatal(err)
	}
	if v, err := fs.GetXattr(ctx, "/f", "user.k"); err != nil || v != "v" {
		t.Fatalf("xattr = (%q, %v)", v, err)
	}
}

func testReadAtEOF(t *testing.T, mk New) {
	fs := mk()
	ctx := storage.NewContext()
	mustCreate(t, fs, ctx, "/f", []byte("abc"))
	h, _ := fs.Open(ctx, "/f")
	defer h.Close(ctx)
	n, err := h.ReadAt(ctx, 3, make([]byte, 4))
	if err != nil || n != 0 {
		t.Fatalf("read at EOF = (%d, %v)", n, err)
	}
	buf := make([]byte, 8)
	n, err = h.ReadAt(ctx, 1, buf)
	if err != nil || n != 2 || string(buf[:n]) != "bc" {
		t.Fatalf("short read = (%d, %v, %q)", n, err, buf[:n])
	}
}

func testEmptyPath(t *testing.T, mk New) {
	fs := mk()
	ctx := storage.NewContext()
	if _, err := fs.Create(ctx, ""); !errors.Is(err, storage.ErrInvalidArg) {
		t.Fatalf("empty create: %v", err)
	}
	if err := fs.Mkdir(ctx, ""); !errors.Is(err, storage.ErrInvalidArg) {
		t.Fatalf("empty mkdir: %v", err)
	}
}

func testRandomWrites(t *testing.T, mk New) {
	fs := mk()
	ctx := storage.NewContext()
	h, err := fs.Create(ctx, "/r")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close(ctx)
	if _, err := h.WriteAt(ctx, 100, []byte("tail")); err != nil {
		t.Fatalf("gap write: %v", err)
	}
	if _, err := h.WriteAt(ctx, 0, []byte("head")); err != nil {
		t.Fatalf("backfill write: %v", err)
	}
	buf := make([]byte, 4)
	if n, _ := h.ReadAt(ctx, 100, buf); string(buf[:n]) != "tail" {
		t.Fatalf("tail = %q", buf[:n])
	}
	if n, _ := h.ReadAt(ctx, 0, buf); string(buf[:n]) != "head" {
		t.Fatalf("head = %q", buf[:n])
	}
	// The gap reads as zeros.
	gap := make([]byte, 4)
	h.ReadAt(ctx, 50, gap)
	for _, b := range gap {
		if b != 0 {
			t.Fatalf("gap byte = %d", b)
		}
	}
}

func testRandomWritesRejected(t *testing.T, mk New) {
	fs := mk()
	ctx := storage.NewContext()
	h, err := fs.Create(ctx, "/r")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close(ctx)
	if _, err := h.WriteAt(ctx, 0, []byte("base")); err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt(ctx, 100, []byte("gap")); !errors.Is(err, storage.ErrUnsupported) {
		t.Fatalf("gap write accepted: %v", err)
	}
	if _, err := h.WriteAt(ctx, 1, []byte("overwrite")); !errors.Is(err, storage.ErrUnsupported) {
		t.Fatalf("overwrite accepted: %v", err)
	}
}

func testImmediateVisibility(t *testing.T, mk New) {
	fs := mk()
	ctx := storage.NewContext()
	w, err := fs.Create(ctx, "/v")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close(ctx)
	r, err := fs.Open(ctx, "/v")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close(ctx)
	w.WriteAt(ctx, 0, []byte("now"))
	buf := make([]byte, 3)
	if n, _ := r.ReadAt(ctx, 0, buf); n != 3 || string(buf) != "now" {
		t.Fatalf("write not immediately visible: (%d, %q)", n, buf[:n])
	}
}

func testDeferredVisibility(t *testing.T, mk New) {
	fs := mk()
	ctx := storage.NewContext()
	w, err := fs.Create(ctx, "/v")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close(ctx)
	r, err := fs.Open(ctx, "/v")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close(ctx)
	w.WriteAt(ctx, 0, []byte("pending"))
	if n, _ := r.ReadAt(ctx, 0, make([]byte, 7)); n != 0 {
		t.Fatalf("unflushed write visible: %d bytes", n)
	}
	if err := w.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 7)
	if n, _ := r.ReadAt(ctx, 0, buf); n != 7 || string(buf) != "pending" {
		t.Fatalf("after sync: (%d, %q)", n, buf[:n])
	}
}

func testPartialTruncate(t *testing.T, mk New) {
	fs := mk()
	ctx := storage.NewContext()
	mustCreate(t, fs, ctx, "/t", []byte("0123456789"))
	if err := fs.Truncate(ctx, "/t", 4); err != nil {
		t.Fatal(err)
	}
	if info, _ := fs.Stat(ctx, "/t"); info.Size != 4 {
		t.Fatalf("size after shrink = %d", info.Size)
	}
	if err := fs.Truncate(ctx, "/t", 8); err != nil {
		t.Fatal(err)
	}
	h, _ := fs.Open(ctx, "/t")
	defer h.Close(ctx)
	buf := make([]byte, 8)
	n, _ := h.ReadAt(ctx, 0, buf)
	if n != 8 || string(buf[:4]) != "0123" {
		t.Fatalf("after grow: (%d, %q)", n, buf[:n])
	}
	for i := 4; i < 8; i++ {
		if buf[i] != 0 {
			t.Fatalf("grown byte %d = %d", i, buf[i])
		}
	}
}

func testTruncateZeroOnly(t *testing.T, mk New) {
	fs := mk()
	ctx := storage.NewContext()
	mustCreate(t, fs, ctx, "/t", []byte("0123456789"))
	if err := fs.Truncate(ctx, "/t", 4); !errors.Is(err, storage.ErrUnsupported) {
		t.Fatalf("partial truncate: %v", err)
	}
	if err := fs.Truncate(ctx, "/t", 0); err != nil {
		t.Fatal(err)
	}
	if info, _ := fs.Stat(ctx, "/t"); info.Size != 0 {
		t.Fatalf("size after truncate-to-zero = %d", info.Size)
	}
}

func testPermissions(t *testing.T, mk New) {
	fs := mk()
	root := storage.NewContext()
	fs.Mkdir(root, "/locked")
	if err := fs.Chmod(root, "/locked", 0o700); err != nil {
		t.Fatal(err)
	}
	mustCreate(t, fs, root, "/locked/secret", []byte("s"))
	user := storage.NewContext()
	user.UID, user.GID = 1000, 1000
	if _, err := fs.Open(user, "/locked/secret"); !errors.Is(err, storage.ErrPermission) {
		t.Fatalf("traversal allowed: %v", err)
	}
	if err := fs.Chmod(user, "/locked", 0o777); !errors.Is(err, storage.ErrPermission) {
		t.Fatalf("non-owner chmod: %v", err)
	}
}

// testAtomicRename: POSIX replace semantics — rename onto an existing file
// swaps it out atomically; renaming a file onto a directory is rejected.
func testAtomicRename(t *testing.T, mk New, caps Capabilities) {
	fs := mk()
	ctx := storage.NewContext()
	mustCreate(t, fs, ctx, "/dst", []byte("old destination"))
	mustCreate(t, fs, ctx, "/src", []byte("new"))
	if err := fs.Rename(ctx, "/src", "/dst"); err != nil {
		t.Fatalf("replace rename: %v", err)
	}
	if _, err := fs.Stat(ctx, "/src"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("source survived replace: %v", err)
	}
	info, err := fs.Stat(ctx, "/dst")
	if err != nil || info.Size != 3 {
		t.Fatalf("replaced stat = (%+v, %v)", info, err)
	}
	h, err := fs.Open(ctx, "/dst")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close(ctx)
	buf := make([]byte, 8)
	if n, _ := h.ReadAt(ctx, 0, buf); string(buf[:n]) != "new" {
		t.Fatalf("replaced content = %q", buf[:n])
	}
	// A directory target is not replaceable by a file.
	fs.Mkdir(ctx, "/dir")
	mustCreate(t, fs, ctx, "/f", []byte("x"))
	if err := fs.Rename(ctx, "/f", "/dir"); !errors.Is(err, storage.ErrIsDirectory) {
		t.Fatalf("rename onto dir: %v", err)
	}
	// Self-rename is a no-op success, not a delete.
	if err := fs.Rename(ctx, "/f", "/f"); err != nil {
		t.Fatalf("self rename: %v", err)
	}
	if info, err := fs.Stat(ctx, "/f"); err != nil || info.Size != 1 {
		t.Fatalf("after self rename: (%+v, %v)", info, err)
	}
}

// testRenameTargetRejected: backends without atomic replace must refuse an
// existing target (file or directory) and leave both paths intact.
func testRenameTargetRejected(t *testing.T, mk New) {
	fs := mk()
	ctx := storage.NewContext()
	mustCreate(t, fs, ctx, "/src", []byte("ss"))
	mustCreate(t, fs, ctx, "/dst", []byte("ddd"))
	if err := fs.Rename(ctx, "/src", "/dst"); !errors.Is(err, storage.ErrExists) {
		t.Fatalf("rename onto file: %v", err)
	}
	fs.Mkdir(ctx, "/dir")
	if err := fs.Rename(ctx, "/src", "/dir"); !errors.Is(err, storage.ErrExists) && !errors.Is(err, storage.ErrIsDirectory) {
		t.Fatalf("rename onto dir: %v", err)
	}
	if info, err := fs.Stat(ctx, "/src"); err != nil || info.Size != 2 {
		t.Fatalf("source mutated: (%+v, %v)", info, err)
	}
	if info, err := fs.Stat(ctx, "/dst"); err != nil || info.Size != 3 {
		t.Fatalf("target mutated: (%+v, %v)", info, err)
	}
}

// testSparseHoles: a far write leaves a hole that reads as zeros, counts
// toward the size, and survives close/reopen; backfilling part of the hole
// later works. The hole offset is prime-ish so it straddles chunk and block
// boundaries at every configured granularity.
func testSparseHoles(t *testing.T, mk New) {
	fs := mk()
	ctx := storage.NewContext()
	h, err := fs.Create(ctx, "/s")
	if err != nil {
		t.Fatal(err)
	}
	const holeEnd = 70003
	if _, err := h.WriteAt(ctx, 0, []byte("head")); err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt(ctx, holeEnd, []byte("tail")); err != nil {
		t.Fatalf("sparse write: %v", err)
	}
	if _, err := h.WriteAt(ctx, 35000, []byte("mid")); err != nil {
		t.Fatalf("backfill write: %v", err)
	}
	if err := h.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if info, err := fs.Stat(ctx, "/s"); err != nil || info.Size != holeEnd+4 {
		t.Fatalf("sparse stat = (%+v, %v)", info, err)
	}
	r, err := fs.Open(ctx, "/s")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close(ctx)
	buf := make([]byte, 4)
	if n, _ := r.ReadAt(ctx, holeEnd, buf); string(buf[:n]) != "tail" {
		t.Fatalf("tail = %q", buf[:n])
	}
	if n, _ := r.ReadAt(ctx, 35000, buf[:3]); string(buf[:n]) != "mid" {
		t.Fatalf("mid = %q", buf[:n])
	}
	hole := make([]byte, 64)
	n, err := r.ReadAt(ctx, 12345, hole)
	if err != nil || n != len(hole) {
		t.Fatalf("hole read = (%d, %v)", n, err)
	}
	for i, b := range hole {
		if b != 0 {
			t.Fatalf("hole byte %d = %d", 12345+i, b)
		}
	}
}

// testSparseGapRejected: append-only backends must reject the gap write
// rather than silently fabricate a hole.
func testSparseGapRejected(t *testing.T, mk New) {
	fs := mk()
	ctx := storage.NewContext()
	h, err := fs.Create(ctx, "/s")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close(ctx)
	if _, err := h.WriteAt(ctx, 0, []byte("base")); err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt(ctx, 70003, []byte("tail")); !errors.Is(err, storage.ErrUnsupported) {
		t.Fatalf("gap write accepted: %v", err)
	}
	if info, err := fs.Stat(ctx, "/s"); err != nil || info.Size > 4 {
		t.Fatalf("gap write grew the file: (%+v, %v)", info, err)
	}
}

// largePattern fills p with the deterministic byte pattern for file offset
// off, so any slice of a large file is independently checkable.
func largePattern(off int64, p []byte) {
	for i := range p {
		v := off + int64(i)
		p[i] = byte(v ^ (v >> 7) ^ (v >> 13))
	}
}

// testLargeFile: 128 KiB written in sequential 8 KiB strides (append-only
// compatible) spans thousands of 64-byte blobfs chunks and many write-
// behind buffers, and must round-trip byte-for-byte through close/reopen.
func testLargeFile(t *testing.T, mk New) {
	fs := mk()
	ctx := storage.NewContext()
	const stride, total = 8 << 10, 128 << 10
	h, err := fs.Create(ctx, "/big")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, stride)
	for off := int64(0); off < total; off += stride {
		largePattern(off, buf)
		if n, err := h.WriteAt(ctx, off, buf); err != nil || n != stride {
			t.Fatalf("write at %d: (%d, %v)", off, n, err)
		}
	}
	if err := h.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if info, err := fs.Stat(ctx, "/big"); err != nil || info.Size != total {
		t.Fatalf("large stat = (%+v, %v)", info, err)
	}
	r, err := fs.Open(ctx, "/big")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close(ctx)
	got := make([]byte, 32<<10)
	want := make([]byte, 32<<10)
	for off := int64(0); off < total; off += int64(len(got)) {
		n, err := r.ReadAt(ctx, off, got)
		if err != nil || n != len(got) {
			t.Fatalf("read at %d: (%d, %v)", off, n, err)
		}
		largePattern(off, want)
		if !bytes.Equal(got, want) {
			t.Fatalf("content diverges in [%d, %d)", off, off+int64(n))
		}
	}
}

// testConcurrentHandles: four writable handles (from Open) write disjoint
// regions concurrently; after sync+close the union is intact.
func testConcurrentHandles(t *testing.T, mk New) {
	fs := mk()
	ctx := storage.NewContext()
	mustCreate(t, fs, ctx, "/c", nil)
	const workers, region = 4, 1024
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			child := ctx.Fork()
			h, err := fs.Open(child, "/c")
			if err != nil {
				errs[i] = err
				return
			}
			data := bytes.Repeat([]byte{byte('A' + i)}, region)
			if _, err := h.WriteAt(child, int64(i)*region, data); err != nil {
				errs[i] = err
				h.Close(child)
				return
			}
			if err := h.Sync(child); err != nil {
				errs[i] = err
				h.Close(child)
				return
			}
			errs[i] = h.Close(child)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if info, err := fs.Stat(ctx, "/c"); err != nil || info.Size != workers*region {
		t.Fatalf("stat = (%+v, %v)", info, err)
	}
	r, err := fs.Open(ctx, "/c")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close(ctx)
	got := make([]byte, workers*region)
	if n, err := r.ReadAt(ctx, 0, got); err != nil || n != len(got) {
		t.Fatalf("read = (%d, %v)", n, err)
	}
	for i := 0; i < workers; i++ {
		for j := 0; j < region; j++ {
			if got[i*region+j] != byte('A'+i) {
				t.Fatalf("byte %d = %q, want %q", i*region+j, got[i*region+j], byte('A'+i))
			}
		}
	}
}

// testSingleWriterLease: without concurrent handles the backend must hold a
// single-writer lease — a second create conflicts while the writer is open,
// opened handles are read-only, and closing the writer releases the lease.
func testSingleWriterLease(t *testing.T, mk New) {
	fs := mk()
	ctx := storage.NewContext()
	w, err := fs.Create(ctx, "/f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create(ctx, "/f"); !errors.Is(err, storage.ErrExists) {
		t.Fatalf("concurrent create: %v", err)
	}
	r, err := fs.Open(ctx, "/f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.WriteAt(ctx, 0, []byte("x")); !errors.Is(err, storage.ErrReadOnly) {
		t.Fatalf("write through reader handle: %v", err)
	}
	if err := r.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(ctx); err != nil {
		t.Fatal(err)
	}
	w2, err := fs.Create(ctx, "/f")
	if err != nil {
		t.Fatalf("create after lease release: %v", err)
	}
	if err := w2.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// Name gives subtests a stable label per backend.
func Name(backend string, sub string) string {
	return fmt.Sprintf("%s/%s", backend, sub)
}
