package fstest

import (
	"testing"

	"repro/internal/blob"
	"repro/internal/blobfs"
	"repro/internal/cluster"
	"repro/internal/fs/posixfs"
	"repro/internal/fs/relaxedfs"
	"repro/internal/mpiio"
	"repro/internal/sim"
	"repro/internal/storage"
)

// The conformance matrix: every storage.FileSystem backend and FS-backed
// front-end registered in one place, each declaring the capability envelope
// the paper attributes to it. TestConformanceMatrix asserts exactly that
// envelope per backend; FuzzFSOps (fuzz_test.go) reuses the same registry
// to constrain differential script generation. Keep this table in sync with
// the capability-matrix table in the package doc (fstest.go).

// Backend is one registered implementation under test.
type Backend struct {
	Name string
	Mk   New
	Caps Capabilities
}

func newCluster() *cluster.Cluster {
	return cluster.New(cluster.Config{Nodes: 5, Seed: 1})
}

func newBlobFS(chunk, replication int) storage.FileSystem {
	c := newCluster()
	return blobfs.New(blob.New(c, blob.Config{ChunkSize: chunk, Replication: replication}))
}

// Backends returns the full registry. Each Mk builds a fresh, empty system.
func Backends() []Backend {
	posixCaps := Capabilities{
		RandomWrites:        true,
		ImmediateVisibility: true,
		PartialTruncate:     true,
		Permissions:         true,
		AtomicRename:        true,
		SparseFiles:         true,
		LargeFiles:          true,
		ConcurrentHandles:   true,
	}
	blobCaps := Capabilities{
		RandomWrites:        true,
		ImmediateVisibility: true,
		PartialTruncate:     true,
		Permissions:         false, // client-side modes don't gate access
		AtomicRename:        false, // rename refuses an existing target
		SparseFiles:         true,
		LargeFiles:          true,
		ConcurrentHandles:   true,
	}
	mpiioCaps := func(inner Capabilities) Capabilities {
		inner.ImmediateVisibility = false // visible on sync/close, Section II-A
		return inner
	}
	return []Backend{
		{
			Name: "posixfs",
			Mk:   func() storage.FileSystem { return posixfs.NewStrict(newCluster()) },
			Caps: posixCaps,
		},
		{
			Name: "relaxedfs",
			Mk: func() storage.FileSystem {
				return relaxedfs.New(newCluster(), relaxedfs.Config{})
			},
			Caps: Capabilities{LargeFiles: true},
		},
		{
			Name: "blobfs",
			Mk:   func() storage.FileSystem { return newBlobFS(64, 2) },
			Caps: blobCaps,
		},
		// The same adapter with a large chunk size (chunk boundaries never
		// hit), guarding blobfs behaviour against chunk-size coupling.
		{
			Name: "blobfs-largechunk",
			Mk:   func() storage.FileSystem { return newBlobFS(8<<20, 3) },
			Caps: blobCaps,
		},
		{
			Name: "mpiio-posixfs",
			Mk: func() storage.FileSystem {
				return mpiio.NewFS(posixfs.NewStrict(newCluster()), sim.DefaultCostModel(), mpiio.Options{})
			},
			Caps: mpiioCaps(posixCaps),
		},
		{
			Name: "mpiio-blobfs",
			Mk: func() storage.FileSystem {
				return mpiio.NewFS(newBlobFS(64, 2), sim.DefaultCostModel(), mpiio.Options{})
			},
			Caps: mpiioCaps(blobCaps),
		},
	}
}

// TestConformanceMatrix runs the full capability-gated battery over every
// registered backend.
func TestConformanceMatrix(t *testing.T) {
	for _, b := range Backends() {
		b := b
		t.Run(b.Name, func(t *testing.T) { Run(t, b.Mk, b.Caps) })
	}
}
