package fstest

import (
	"testing"

	"repro/internal/blob"
	"repro/internal/blobfs"
	"repro/internal/cluster"
	"repro/internal/fs/posixfs"
	"repro/internal/fs/relaxedfs"
	"repro/internal/storage"
)

// The conformance matrix: one suite, three backends, each with the
// capability envelope the paper attributes to it.

func TestPosixFSConformance(t *testing.T) {
	Run(t, func() storage.FileSystem {
		return posixfs.NewStrict(cluster.New(cluster.Config{Nodes: 5, Seed: 1}))
	}, Capabilities{
		RandomWrites:        true,
		ImmediateVisibility: true,
		PartialTruncate:     true,
		Permissions:         true,
	})
}

func TestRelaxedFSConformance(t *testing.T) {
	Run(t, func() storage.FileSystem {
		return relaxedfs.New(cluster.New(cluster.Config{Nodes: 5, Seed: 1}), relaxedfs.Config{})
	}, Capabilities{
		RandomWrites:        false,
		ImmediateVisibility: false,
		PartialTruncate:     false,
		Permissions:         false,
	})
}

func TestBlobFSConformance(t *testing.T) {
	Run(t, func() storage.FileSystem {
		c := cluster.New(cluster.Config{Nodes: 5, Seed: 1})
		return blobfs.New(blob.New(c, blob.Config{ChunkSize: 64, Replication: 2}))
	}, Capabilities{
		RandomWrites:        true,
		ImmediateVisibility: true,
		PartialTruncate:     true,
		Permissions:         false, // client-side modes don't gate access
	})
}

// The same matrix with a large chunk size (chunk boundaries never hit),
// guarding blobfs behaviour against chunk-size coupling.
func TestBlobFSConformanceLargeChunks(t *testing.T) {
	Run(t, func() storage.FileSystem {
		c := cluster.New(cluster.Config{Nodes: 5, Seed: 1})
		return blobfs.New(blob.New(c, blob.Config{ChunkSize: 8 << 20, Replication: 3}))
	}, Capabilities{
		RandomWrites:        true,
		ImmediateVisibility: true,
		PartialTruncate:     true,
		Permissions:         false,
	})
}
