package fstest

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/adios"
	"repro/internal/h5"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/storage"
)

// The intermediate libraries (HDF5- and ADIOS-style, Section II-A) expose
// dataset/step APIs rather than storage.FileSystem, so they join the
// conformance matrix through scripted op sequences: a deterministic script
// of library operations runs over every registered backend and is diffed
// against a pure in-memory reference model. Both libraries need a
// writable Open (h5 additionally rewrites its superblock in place), which
// rules out the append-only single-writer backend — everything else in the
// registry must agree with the model bit-for-bit.

// lcg is a tiny deterministic generator for script operands.
type lcg struct{ x uint64 }

func (g *lcg) next() uint64 {
	g.x = g.x*6364136223846793005 + 1442695040888963407
	return g.x >> 33
}

func (g *lcg) intn(n int) int { return int(g.next() % uint64(n)) }

func scriptedBackends(t *testing.T) []Backend {
	t.Helper()
	var out []Backend
	for _, b := range Backends() {
		if b.Caps.RandomWrites {
			out = append(out, b)
		}
	}
	if len(out) < 4 {
		t.Fatalf("registry shrank: only %d random-write backends", len(out))
	}
	return out
}

// TestH5ScriptedDifferential replays a generated hyperslab script against
// an in-memory dense-array model and the h5 library over each backend.
func TestH5ScriptedDifferential(t *testing.T) {
	const (
		rows, cols = 8, 16
		rawLen     = 64
	)
	for _, b := range scriptedBackends(t) {
		t.Run(b.Name, func(t *testing.T) {
			fs := b.Mk()
			// Reference model: dense arrays and attribute maps.
			temps := make([]float64, rows*cols)
			raw := make([]byte, rawLen)
			attrs := map[string]string{}

			errs := mpi.Run(1, sim.DefaultCostModel(), func(r *mpi.Rank) error {
				f, err := h5.Create(r, fs, "/exp.h5")
				if err != nil {
					return err
				}
				ds, err := f.CreateDataset("temps", h5.Float64, []int64{rows, cols})
				if err != nil {
					return err
				}
				bs, err := f.CreateDataset("raw", h5.Bytes, []int64{rawLen})
				if err != nil {
					return err
				}
				if err := f.SetAttr("experiment", "matrix"); err != nil {
					return err
				}
				attrs["experiment"] = "matrix"
				if err := ds.SetAttr("units", "kelvin"); err != nil {
					return err
				}
				attrs["temps/units"] = "kelvin"

				g := &lcg{x: 42}
				for op := 0; op < 40; op++ {
					switch g.intn(3) {
					case 0: // float64 hyperslab write
						o0, o1 := int64(g.intn(rows)), int64(g.intn(cols))
						c0 := int64(1 + g.intn(rows-int(o0)))
						c1 := int64(1 + g.intn(cols-int(o1)))
						data := make([]float64, c0*c1)
						for i := range data {
							data[i] = float64(op*1000+i) / 7
						}
						if err := ds.WriteFloat64([]int64{o0, o1}, []int64{c0, c1}, data); err != nil {
							return fmt.Errorf("op %d write slab: %w", op, err)
						}
						for i := int64(0); i < c0; i++ {
							for j := int64(0); j < c1; j++ {
								temps[(o0+i)*cols+o1+j] = data[i*c1+j]
							}
						}
					case 1: // float64 hyperslab read-back, diffed immediately
						o0, o1 := int64(g.intn(rows)), int64(g.intn(cols))
						c0 := int64(1 + g.intn(rows-int(o0)))
						c1 := int64(1 + g.intn(cols-int(o1)))
						got := make([]float64, c0*c1)
						if err := ds.ReadFloat64([]int64{o0, o1}, []int64{c0, c1}, got); err != nil {
							return fmt.Errorf("op %d read slab: %w", op, err)
						}
						for i := int64(0); i < c0; i++ {
							for j := int64(0); j < c1; j++ {
								if want := temps[(o0+i)*cols+o1+j]; got[i*c1+j] != want {
									return fmt.Errorf("op %d slab[%d,%d] = %v, want %v", op, o0+i, o1+j, got[i*c1+j], want)
								}
							}
						}
					case 2: // byte-range write
						off := int64(g.intn(rawLen))
						n := int64(1 + g.intn(rawLen-int(off)))
						data := make([]byte, n)
						for i := range data {
							data[i] = byte(op + i)
						}
						if err := bs.WriteBytes([]int64{off}, []int64{n}, data); err != nil {
							return fmt.Errorf("op %d write bytes: %w", op, err)
						}
						copy(raw[off:off+n], data)
					}
				}
				return f.Close()
			})
			if err := mpi.FirstError(errs); err != nil {
				t.Fatal(err)
			}

			// Reopen read-only and diff the full surviving state.
			errs = mpi.Run(1, sim.DefaultCostModel(), func(r *mpi.Rank) error {
				f, err := h5.Open(r, fs, "/exp.h5")
				if err != nil {
					return err
				}
				defer f.Close()
				if v, ok := f.Attr("experiment"); !ok || v != attrs["experiment"] {
					return fmt.Errorf("file attr = (%q, %v)", v, ok)
				}
				ds, err := f.Dataset("temps")
				if err != nil {
					return err
				}
				if v, ok := ds.Attr("units"); !ok || v != attrs["temps/units"] {
					return fmt.Errorf("dataset attr = (%q, %v)", v, ok)
				}
				got := make([]float64, rows*cols)
				if err := ds.ReadFloat64([]int64{0, 0}, []int64{rows, cols}, got); err != nil {
					return err
				}
				for i := range got {
					if got[i] != temps[i] || math.IsNaN(got[i]) {
						return fmt.Errorf("temps[%d] = %v, want %v", i, got[i], temps[i])
					}
				}
				bs, err := f.Dataset("raw")
				if err != nil {
					return err
				}
				gotRaw := make([]byte, rawLen)
				if err := bs.ReadBytes([]int64{0}, []int64{rawLen}, gotRaw); err != nil {
					return err
				}
				for i := range gotRaw {
					if gotRaw[i] != raw[i] {
						return fmt.Errorf("raw[%d] = %d, want %d", i, gotRaw[i], raw[i])
					}
				}
				return nil
			})
			if err := mpi.FirstError(errs); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestADIOSScriptedDifferential replays a multi-step, multi-rank output
// script against an in-memory per-step model and the adios library over
// each backend, then reads everything back through the index.
func TestADIOSScriptedDifferential(t *testing.T) {
	const (
		ranks    = 4
		aggs     = 2
		steps    = 3
		blockLen = 10
	)
	for _, b := range scriptedBackends(t) {
		t.Run(b.Name, func(t *testing.T) {
			fs := b.Mk()
			// model[step][i] for the 1-D global variable.
			model := make([][]float64, steps)
			for s := range model {
				model[s] = make([]float64, ranks*blockLen)
				for i := range model[s] {
					rank := i / blockLen
					model[s][i] = float64(s*100+rank*10) + float64(i%blockLen)/8
				}
			}

			errs := mpi.Run(ranks, sim.DefaultCostModel(), func(r *mpi.Rank) error {
				w, err := adios.OpenWriter(r, fs, "/out.bp", aggs)
				if err != nil {
					return err
				}
				for s := 0; s < steps; s++ {
					if err := w.BeginStep(); err != nil {
						return err
					}
					data := make([]float64, blockLen)
					for i := range data {
						data[i] = model[s][r.ID*blockLen+i]
					}
					err := w.PutFloat64("field",
						[]int64{blockLen},
						[]int64{int64(r.ID * blockLen)}, data)
					if err != nil {
						return err
					}
					if err := w.EndStep(); err != nil {
						return err
					}
				}
				return w.Close()
			})
			if err := mpi.FirstError(errs); err != nil {
				t.Fatal(err)
			}

			ctx := storage.NewContext()
			rd, err := adios.OpenReader(ctx, fs, "/out.bp")
			if err != nil {
				t.Fatal(err)
			}
			if rd.Steps() != steps {
				t.Fatalf("Steps = %d, want %d", rd.Steps(), steps)
			}
			vars := rd.Variables()
			if len(vars) != 1 || vars[0] != "field" {
				t.Fatalf("Variables = %v", vars)
			}
			for s := 0; s < steps; s++ {
				got, err := rd.ReadGlobal1D(ctx, "field", s)
				if err != nil {
					t.Fatalf("step %d: %v", s, err)
				}
				if len(got) != len(model[s]) {
					t.Fatalf("step %d: %d elems, want %d", s, len(got), len(model[s]))
				}
				for i := range got {
					if got[i] != model[s][i] {
						t.Fatalf("step %d elem %d = %v, want %v", s, i, got[i], model[s][i])
					}
				}
				// Spot-check one block through the per-block interface.
				blocks := rd.Blocks("field", s)
				if len(blocks) != ranks {
					t.Fatalf("step %d: %d blocks, want %d", s, len(blocks), ranks)
				}
				bd, err := rd.ReadBlock(ctx, blocks[s%ranks])
				if err != nil {
					t.Fatal(err)
				}
				off := blocks[s%ranks].Offsets[0]
				for i := range bd {
					if bd[i] != model[s][int(off)+i] {
						t.Fatalf("step %d block elem %d = %v, want %v", s, i, bd[i], model[s][int(off)+i])
					}
				}
			}
		})
	}
}
