package fstest

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"testing"

	"repro/internal/fs/posixfs"
	"repro/internal/storage"
)

// FuzzFSOps is the differential op-sequence fuzzer: the input bytes decode
// into a script of file-system operations that is replayed, in lockstep,
// against a fresh strict-POSIX reference and against every registered
// backend. Script generation is constrained to each backend's declared
// capability envelope (a backend that rejects random writes is only asked
// to append, a non-replacing rename is never pointed at an existing
// target), so within the envelope every backend must agree with POSIX on
// error class and — where visibility allows — on observable bytes. After
// the script, all handles close and the fuzzer diffs the full surviving
// state: per-path existence, kind, size, contents, and directory listings.
//
// Divergences this fuzzer found during development were fixed in the
// front-ends and pinned by named regression tests (see blobfs: Mkdir over
// an existing file, Rename onto an existing directory, Truncate of a
// directory, Rmdir of a file).

// The fixed namespace keeps scripts short and collisions frequent.
var (
	fuzzDirs  = []string{"d", "d2"}
	fuzzPaths = []string{"a", "b", "d/x", "d/y", "d2/z", "d/sub"}
	// Rename and mkdir draw from both lists so files and directory
	// subtrees both move.
	fuzzNodes = append(append([]string{}, fuzzPaths...), fuzzDirs...)
)

var errClasses = []struct {
	name string
	err  error
}{
	{"notfound", storage.ErrNotFound},
	{"exists", storage.ErrExists},
	{"notempty", storage.ErrNotEmpty},
	{"isdir", storage.ErrIsDirectory},
	{"notdir", storage.ErrNotDirectory},
	{"perm", storage.ErrPermission},
	{"readonly", storage.ErrReadOnly},
	{"invalid", storage.ErrInvalidArg},
	{"unsupported", storage.ErrUnsupported},
	{"closed", storage.ErrClosed},
	{"stale", storage.ErrStaleHandle},
	{"unavailable", storage.ErrUnavailable},
	{"conflict", storage.ErrTxnConflict},
	{"quota", storage.ErrQuotaExceeded},
}

// errClass buckets an error by storage sentinel for cross-backend
// comparison; message text is backend-flavoured and never compared.
func errClass(err error) string {
	if err == nil {
		return "ok"
	}
	for _, c := range errClasses {
		if errors.Is(err, c.err) {
			return c.name
		}
	}
	return "other"
}

// script decodes fuzz input lazily.
type script struct {
	in  []byte
	pos int
}

func (s *script) done() bool { return s.pos >= len(s.in) }

func (s *script) next() byte {
	if s.done() {
		return 0
	}
	b := s.in[s.pos]
	s.pos++
	return b
}

// openPair is one logical open file replicated on reference and target.
type openPair struct {
	ref, tgt storage.Handle
	writable bool // opened via Create
	dirty    bool // unsynced writes pending
}

// diffState replays one script against ref (strict POSIX) and tgt,
// reporting divergences on t.
type diffState struct {
	t       *testing.T
	name    string
	caps    Capabilities
	ref     storage.FileSystem
	tgt     storage.FileSystem
	refCtx  *storage.Context
	tgtCtx  *storage.Context
	handles map[string]*openPair
	step    int
}

func (d *diffState) failf(format string, args ...any) {
	d.t.Helper()
	d.t.Errorf("backend %s step %d: %s", d.name, d.step, fmt.Sprintf(format, args...))
}

// checkErr compares error classes from the same op on both sides.
func (d *diffState) checkErr(op string, refErr, tgtErr error) bool {
	d.t.Helper()
	rc, tc := errClass(refErr), errClass(tgtErr)
	if rc != tc {
		d.failf("%s: reference %s (%v), target %s (%v)", op, rc, refErr, tc, tgtErr)
		return false
	}
	return rc == "ok"
}

// refSize returns the reference's view of a path's size, or -1 if absent.
func (d *diffState) refSize(path string) int64 {
	fi, err := d.ref.Stat(d.refCtx, path)
	if err != nil || fi.IsDir {
		return -1
	}
	return fi.Size
}

func (d *diffState) refIsDir(path string) bool {
	fi, err := d.ref.Stat(d.refCtx, path)
	return err == nil && fi.IsDir
}

func (d *diffState) refExists(path string) bool {
	_, err := d.ref.Stat(d.refCtx, path)
	return err == nil
}

// anyHandleUnder reports whether an open handle exists at path or anywhere
// in its subtree (ops that would invalidate live handles are skipped —
// that behaviour is backend-defined and outside the envelope).
func (d *diffState) anyHandleUnder(path string) bool {
	for p := range d.handles {
		if p == path || len(p) > len(path) && p[:len(path)] == path && p[len(path)] == '/' {
			return true
		}
	}
	return false
}

// fill writes a deterministic pattern so settle-phase content diffs mean
// something.
func fill(seed byte, p []byte) {
	for i := range p {
		p[i] = seed ^ byte(i*7)
	}
}

func (d *diffState) apply(s *script) {
	op := s.next() % 13
	d.step++
	switch op {
	case 0: // create
		path := fuzzPaths[int(s.next())%len(fuzzPaths)]
		if _, open := d.handles[path]; open {
			return
		}
		rh, rerr := d.ref.Create(d.refCtx, path)
		th, terr := d.tgt.Create(d.tgtCtx, path)
		if d.checkErr("create "+path, rerr, terr) {
			d.handles[path] = &openPair{ref: rh, tgt: th, writable: true}
		} else {
			closeQuiet(d, rh, th)
		}
	case 1: // open (read path; writes go through create handles only)
		path := fuzzPaths[int(s.next())%len(fuzzPaths)]
		if _, open := d.handles[path]; open {
			return
		}
		rh, rerr := d.ref.Open(d.refCtx, path)
		th, terr := d.tgt.Open(d.tgtCtx, path)
		if d.checkErr("open "+path, rerr, terr) {
			d.handles[path] = &openPair{ref: rh, tgt: th}
		} else {
			closeQuiet(d, rh, th)
		}
	case 2: // write
		path := fuzzPaths[int(s.next())%len(fuzzPaths)]
		h, open := d.handles[path]
		if !open || !h.writable {
			return
		}
		size := d.refSize(path)
		if size < 0 {
			return
		}
		var off int64
		if d.caps.RandomWrites {
			off = int64(s.next()) % (size + 17)
			if !d.caps.SparseFiles && off > size {
				off = size
			}
		} else {
			s.next()
			off = size // append-only envelope
		}
		buf := make([]byte, int(s.next())%37+1)
		fill(s.next(), buf)
		rn, rerr := h.ref.WriteAt(d.refCtx, off, buf)
		tn, terr := h.tgt.WriteAt(d.tgtCtx, off, buf)
		if d.checkErr(fmt.Sprintf("write %s@%d", path, off), rerr, terr) {
			if rn != tn {
				d.failf("write %s@%d: reference wrote %d, target %d", path, off, rn, tn)
			}
			h.dirty = true
		}
	case 3: // read
		path := fuzzPaths[int(s.next())%len(fuzzPaths)]
		h, open := d.handles[path]
		if !open {
			return
		}
		size := d.refSize(path)
		if size < 0 {
			size = 0
		}
		off := int64(s.next()) % (size + 9)
		buf := make([]byte, int(s.next())%48+1)
		rbuf := make([]byte, len(buf))
		rn, rerr := h.ref.ReadAt(d.refCtx, off, rbuf)
		tn, terr := h.tgt.ReadAt(d.tgtCtx, off, buf)
		// Bytes are comparable only when the envelope promises the write
		// is visible: immediately, or because this handle has synced.
		if d.checkErr(fmt.Sprintf("read %s@%d", path, off), rerr, terr) &&
			(d.caps.ImmediateVisibility || !h.dirty) {
			if rn != tn || !bytes.Equal(rbuf[:rn], buf[:tn]) {
				d.failf("read %s@%d len %d: reference %d bytes %x, target %d bytes %x",
					path, off, len(buf), rn, rbuf[:rn], tn, buf[:tn])
			}
		}
	case 4: // sync
		path := fuzzPaths[int(s.next())%len(fuzzPaths)]
		h, open := d.handles[path]
		if !open {
			return
		}
		if d.checkErr("sync "+path, h.ref.Sync(d.refCtx), h.tgt.Sync(d.tgtCtx)) {
			h.dirty = false
		}
	case 5: // close
		path := fuzzPaths[int(s.next())%len(fuzzPaths)]
		h, open := d.handles[path]
		if !open {
			return
		}
		delete(d.handles, path)
		d.checkErr("close "+path, h.ref.Close(d.refCtx), h.tgt.Close(d.tgtCtx))
	case 6: // unlink
		path := fuzzPaths[int(s.next())%len(fuzzPaths)]
		if d.anyHandleUnder(path) {
			return
		}
		d.checkErr("unlink "+path, d.ref.Unlink(d.refCtx, path), d.tgt.Unlink(d.tgtCtx, path))
	case 7: // truncate
		path := fuzzPaths[int(s.next())%len(fuzzPaths)]
		if d.anyHandleUnder(path) {
			return
		}
		var size int64
		if d.caps.PartialTruncate {
			size = int64(s.next()) % (maxInt64(d.refSize(path), 0) + 5)
		} else {
			s.next()
		}
		d.checkErr(fmt.Sprintf("truncate %s to %d", path, size),
			d.ref.Truncate(d.refCtx, path, size), d.tgt.Truncate(d.tgtCtx, path, size))
	case 8: // rename
		src := fuzzNodes[int(s.next())%len(fuzzNodes)]
		dst := fuzzNodes[int(s.next())%len(fuzzNodes)]
		if src == dst || d.anyHandleUnder(src) || d.anyHandleUnder(dst) {
			return
		}
		if under(dst, src) {
			return // moving a directory into itself is ErrInvalidArg everywhere, but skip for symmetry with under(src, dst) renames
		}
		if d.refExists(dst) && !d.caps.AtomicRename {
			return // replacing rename is outside this backend's envelope
		}
		d.checkErr(fmt.Sprintf("rename %s -> %s", src, dst),
			d.ref.Rename(d.refCtx, src, dst), d.tgt.Rename(d.tgtCtx, src, dst))
	case 9: // mkdir
		path := fuzzNodes[int(s.next())%len(fuzzNodes)]
		d.checkErr("mkdir "+path, d.ref.Mkdir(d.refCtx, path), d.tgt.Mkdir(d.tgtCtx, path))
	case 10: // rmdir
		path := fuzzNodes[int(s.next())%len(fuzzNodes)]
		if d.anyHandleUnder(path) {
			return
		}
		d.checkErr("rmdir "+path, d.ref.Rmdir(d.refCtx, path), d.tgt.Rmdir(d.tgtCtx, path))
	case 11: // stat
		path := fuzzNodes[int(s.next())%len(fuzzNodes)]
		rfi, rerr := d.ref.Stat(d.refCtx, path)
		tfi, terr := d.tgt.Stat(d.tgtCtx, path)
		if !d.checkErr("stat "+path, rerr, terr) {
			return
		}
		if rfi.IsDir != tfi.IsDir {
			d.failf("stat %s: reference isdir=%v, target isdir=%v", path, rfi.IsDir, tfi.IsDir)
		}
		if !rfi.IsDir && (d.caps.ImmediateVisibility || !d.dirtyAt(path)) && rfi.Size != tfi.Size {
			d.failf("stat %s: reference size %d, target size %d", path, rfi.Size, tfi.Size)
		}
	case 12: // readdir
		path := fuzzDirs[int(s.next())%len(fuzzDirs)]
		rents, rerr := d.ref.ReadDir(d.refCtx, path)
		tents, terr := d.tgt.ReadDir(d.tgtCtx, path)
		if d.checkErr("readdir "+path, rerr, terr) {
			if rl, tl := listing(rents), listing(tents); rl != tl {
				d.failf("readdir %s: reference [%s], target [%s]", path, rl, tl)
			}
		}
	}
}

func (d *diffState) dirtyAt(path string) bool {
	h, ok := d.handles[path]
	return ok && h.dirty
}

// settle closes every handle and diffs the full observable state. With all
// handles closed, every backend's visibility envelope requires the data to
// be published, so bytes are compared unconditionally.
func (d *diffState) settle() {
	paths := make([]string, 0, len(d.handles))
	for p := range d.handles {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		h := d.handles[p]
		delete(d.handles, p)
		d.checkErr("settle close "+p, h.ref.Close(d.refCtx), h.tgt.Close(d.tgtCtx))
	}
	for _, p := range fuzzNodes {
		rfi, rerr := d.ref.Stat(d.refCtx, p)
		tfi, terr := d.tgt.Stat(d.tgtCtx, p)
		if !d.checkErr("settle stat "+p, rerr, terr) {
			continue
		}
		if rfi.IsDir != tfi.IsDir {
			d.failf("settle stat %s: reference isdir=%v, target isdir=%v", p, rfi.IsDir, tfi.IsDir)
			continue
		}
		if rfi.IsDir {
			rents, rerr := d.ref.ReadDir(d.refCtx, p)
			tents, terr := d.tgt.ReadDir(d.tgtCtx, p)
			if d.checkErr("settle readdir "+p, rerr, terr) {
				if rl, tl := listing(rents), listing(tents); rl != tl {
					d.failf("settle readdir %s: reference [%s], target [%s]", p, rl, tl)
				}
			}
			continue
		}
		if rfi.Size != tfi.Size {
			d.failf("settle stat %s: reference size %d, target size %d", p, rfi.Size, tfi.Size)
			continue
		}
		rdata := slurp(d.t, d.ref, d.refCtx, p, rfi.Size)
		tdata := slurp(d.t, d.tgt, d.tgtCtx, p, rfi.Size)
		if !bytes.Equal(rdata, tdata) {
			d.failf("settle content %s (%d bytes): reference %x, target %x", p, rfi.Size, rdata, tdata)
		}
	}
}

func slurp(t *testing.T, fs storage.FileSystem, ctx *storage.Context, path string, size int64) []byte {
	t.Helper()
	h, err := fs.Open(ctx, path)
	if err != nil {
		t.Errorf("settle open %s: %v", path, err)
		return nil
	}
	defer h.Close(ctx)
	out := make([]byte, size)
	var off int64
	for off < size {
		n, err := h.ReadAt(ctx, off, out[off:])
		if err != nil {
			t.Errorf("settle read %s@%d: %v", path, off, err)
			return out[:off]
		}
		if n == 0 {
			return out[:off]
		}
		off += int64(n)
	}
	return out
}

func listing(ents []storage.DirEntry) string {
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		kind := "f"
		if e.IsDir {
			kind = "d"
		}
		names = append(names, e.Name+":"+kind)
	}
	sort.Strings(names)
	var b bytes.Buffer
	for i, n := range names {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(n)
	}
	return b.String()
}

func closeQuiet(d *diffState, rh, th storage.Handle) {
	if rh != nil {
		_ = rh.Close(d.refCtx)
	}
	if th != nil {
		_ = th.Close(d.tgtCtx)
	}
}

func under(p, dir string) bool {
	return len(p) > len(dir) && p[:len(dir)] == dir && p[len(dir)] == '/'
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

const maxFuzzOps = 64

func runScript(t *testing.T, b Backend, input []byte) {
	t.Helper()
	d := &diffState{
		t:       t,
		name:    b.Name,
		caps:    b.Caps,
		ref:     posixfs.NewStrict(newCluster()),
		tgt:     b.Mk(),
		refCtx:  storage.NewContext(),
		tgtCtx:  storage.NewContext(),
		handles: make(map[string]*openPair),
	}
	for _, dir := range fuzzDirs {
		if err := d.ref.Mkdir(d.refCtx, dir); err != nil {
			t.Fatalf("setup mkdir %s on reference: %v", dir, err)
		}
		if err := d.tgt.Mkdir(d.tgtCtx, dir); err != nil {
			t.Fatalf("setup mkdir %s on %s: %v", dir, b.Name, err)
		}
	}
	s := &script{in: input}
	for !s.done() && d.step < maxFuzzOps {
		d.apply(s)
	}
	d.settle()
}

func FuzzFSOps(f *testing.F) {
	// Seeds cover every opcode and the interesting interleavings: write
	// then read through the same handle, sync-then-read, rename of a file
	// with data, sparse offsets, truncate, directory churn.
	f.Add([]byte{0, 0, 2, 0, 200, 20, 7, 3, 0, 0, 24, 4, 0, 5, 0})
	f.Add([]byte{0, 2, 2, 2, 5, 30, 1, 5, 2, 8, 2, 0, 11, 0, 12, 0})
	f.Add([]byte{0, 0, 2, 0, 90, 36, 9, 5, 0, 7, 0, 12, 11, 0, 1, 0, 3, 0, 3, 40})
	f.Add([]byte{9, 5, 0, 3, 2, 3, 0, 18, 77, 4, 3, 5, 3, 8, 3, 1, 6, 0, 10, 0, 10, 7})
	f.Add([]byte{0, 1, 2, 1, 255, 36, 33, 2, 1, 128, 12, 9, 4, 1, 3, 1, 10, 3, 1, 5, 1, 8, 1, 4, 6, 4})
	f.Add([]byte{8, 6, 0, 9, 6, 9, 2, 0, 4, 2, 4, 120, 30, 2, 5, 4, 11, 4, 5, 4, 8, 4, 0, 6, 4, 10, 6})
	f.Fuzz(func(t *testing.T, input []byte) {
		for _, b := range Backends() {
			runScript(t, b, input)
		}
	})
}
