package adios

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/blob"
	"repro/internal/blobfs"
	"repro/internal/cluster"
	"repro/internal/fs/posixfs"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/trace"
)

func posixTarget() storage.FileSystem {
	return posixfs.NewStrict(cluster.New(cluster.Config{Nodes: 9, Seed: 1}))
}

func blobTarget() storage.FileSystem {
	c := cluster.New(cluster.Config{Nodes: 9, Seed: 1})
	return blobfs.New(blob.New(c, blob.Config{ChunkSize: 1 << 20, Replication: 2}))
}

// writeRun produces `steps` steps of a 1D variable decomposed across the
// communicator, with aggregation factor agg.
func writeRun(t *testing.T, fs storage.FileSystem, ranks, agg, steps int) {
	t.Helper()
	errs := mpi.Run(ranks, sim.DefaultCostModel(), func(r *mpi.Rank) error {
		w, err := OpenWriter(r, fs, "/run.bp", agg)
		if err != nil {
			return err
		}
		const perRank = 64
		for step := 0; step < steps; step++ {
			if err := w.BeginStep(); err != nil {
				return err
			}
			local := make([]float64, perRank)
			for i := range local {
				local[i] = float64(step*1_000_000 + r.ID*1000 + i)
			}
			if err := w.PutFloat64("field", []int64{perRank}, []int64{int64(r.ID * perRank)}, local); err != nil {
				return err
			}
			if err := w.EndStep(); err != nil {
				return err
			}
		}
		return w.Close()
	})
	if err := mpi.FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	fs := posixTarget()
	writeRun(t, fs, 4, 2, 3)

	ctx := storage.NewContext()
	r, err := OpenReader(ctx, fs, "/run.bp")
	if err != nil {
		t.Fatal(err)
	}
	if r.Steps() != 3 {
		t.Fatalf("Steps = %d", r.Steps())
	}
	if vars := r.Variables(); len(vars) != 1 || vars[0] != "field" {
		t.Fatalf("Variables = %v", vars)
	}
	for step := 0; step < 3; step++ {
		global, err := r.ReadGlobal1D(ctx, "field", step)
		if err != nil {
			t.Fatal(err)
		}
		if len(global) != 4*64 {
			t.Fatalf("step %d: global length %d", step, len(global))
		}
		for rank := 0; rank < 4; rank++ {
			for i := 0; i < 64; i++ {
				want := float64(step*1_000_000 + rank*1000 + i)
				if got := global[rank*64+i]; got != want {
					t.Fatalf("step %d rank %d elem %d = %v, want %v", step, rank, i, got, want)
				}
			}
		}
	}
}

func TestBlocksMetadata(t *testing.T) {
	fs := posixTarget()
	writeRun(t, fs, 4, 2, 1)
	ctx := storage.NewContext()
	r, err := OpenReader(ctx, fs, "/run.bp")
	if err != nil {
		t.Fatal(err)
	}
	blocks := r.Blocks("field", 0)
	if len(blocks) != 4 {
		t.Fatalf("blocks = %d", len(blocks))
	}
	subfiles := map[int]bool{}
	for i, b := range blocks {
		if b.Writer != i {
			t.Fatalf("blocks not writer-sorted: %v", blocks)
		}
		if b.Offsets[0] != int64(i*64) {
			t.Fatalf("block %d global offset = %d", i, b.Offsets[0])
		}
		subfiles[b.Subfile] = true
	}
	// 4 ranks over 2 aggregators -> exactly 2 subfiles used.
	if len(subfiles) != 2 {
		t.Fatalf("subfiles used = %v, want 2 aggregators", subfiles)
	}
	// Individual block read.
	data, err := r.ReadBlock(ctx, blocks[2])
	if err != nil {
		t.Fatal(err)
	}
	if data[5] != float64(2*1000+5) {
		t.Fatalf("block payload = %v", data[5])
	}
}

func TestAggregationReducesFileStreams(t *testing.T) {
	// With 8 ranks and 2 aggregators, only 2 data subfiles (plus the
	// index) may exist — the whole point of staged aggregation.
	fs := posixTarget()
	writeRun(t, fs, 8, 2, 1)
	ctx := storage.NewContext()
	entries, err := fs.ReadDir(ctx, "/")
	if err != nil {
		t.Fatal(err)
	}
	var dataFiles, mdFiles int
	for _, e := range entries {
		switch {
		case len(e.Name) > 8 && e.Name[:8] == "run.bp.d":
			dataFiles++
		case e.Name == "run.bp.md":
			mdFiles++
		}
	}
	if dataFiles != 2 {
		t.Fatalf("data subfiles = %d, want 2", dataFiles)
	}
	if mdFiles != 1 {
		t.Fatalf("index files = %d", mdFiles)
	}
}

func TestSingleAggregatorAndFullFanout(t *testing.T) {
	for _, agg := range []int{1, 4} {
		fs := posixTarget()
		writeRun(t, fs, 4, agg, 2)
		ctx := storage.NewContext()
		r, err := OpenReader(ctx, fs, "/run.bp")
		if err != nil {
			t.Fatalf("agg=%d: %v", agg, err)
		}
		global, err := r.ReadGlobal1D(ctx, "field", 1)
		if err != nil || len(global) != 256 {
			t.Fatalf("agg=%d: (%d, %v)", agg, len(global), err)
		}
	}
}

func TestStepProtocolErrors(t *testing.T) {
	fs := posixTarget()
	errs := mpi.Run(1, sim.DefaultCostModel(), func(r *mpi.Rank) error {
		w, err := OpenWriter(r, fs, "/p.bp", 1)
		if err != nil {
			return err
		}
		if err := w.PutFloat64("v", []int64{1}, []int64{0}, []float64{1}); !errors.Is(err, storage.ErrInvalidArg) {
			return fmt.Errorf("Put outside step: %v", err)
		}
		if err := w.EndStep(); !errors.Is(err, storage.ErrInvalidArg) {
			return fmt.Errorf("EndStep outside step: %v", err)
		}
		if err := w.BeginStep(); err != nil {
			return err
		}
		if err := w.BeginStep(); !errors.Is(err, storage.ErrInvalidArg) {
			return fmt.Errorf("nested BeginStep: %v", err)
		}
		if err := w.Close(); !errors.Is(err, storage.ErrInvalidArg) {
			return fmt.Errorf("Close inside step: %v", err)
		}
		if err := w.PutFloat64("", []int64{1}, []int64{0}, []float64{1}); !errors.Is(err, storage.ErrInvalidArg) {
			return fmt.Errorf("empty name: %v", err)
		}
		if err := w.PutFloat64("v", []int64{2}, []int64{0}, []float64{1}); !errors.Is(err, storage.ErrInvalidArg) {
			return fmt.Errorf("length mismatch: %v", err)
		}
		if err := w.EndStep(); err != nil {
			return err
		}
		return w.Close()
	})
	if err := mpi.FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestReaderErrors(t *testing.T) {
	fs := posixTarget()
	ctx := storage.NewContext()
	if _, err := OpenReader(ctx, fs, "/absent.bp"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("missing output: %v", err)
	}
	writeRun(t, fs, 2, 1, 1)
	r, err := OpenReader(ctx, fs, "/run.bp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadGlobal1D(ctx, "nope", 0); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("unknown variable: %v", err)
	}
	if _, err := r.ReadGlobal1D(ctx, "field", 9); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("unknown step: %v", err)
	}
}

func TestNoDirectoryOpsThroughAdios(t *testing.T) {
	census := trace.NewCensus()
	fs := trace.Wrap(posixTarget(), census)
	writeRun(t, fs, 4, 2, 2)
	if got := census.KindCount(storage.CallDirOp); got != 0 {
		t.Fatalf("adios issued %d directory operations", got)
	}
}

func TestAdiosOnBlobStorage(t *testing.T) {
	fs := blobTarget()
	writeRun(t, fs, 4, 2, 2)
	ctx := storage.NewContext()
	r, err := OpenReader(ctx, fs, "/run.bp")
	if err != nil {
		t.Fatal(err)
	}
	global, err := r.ReadGlobal1D(ctx, "field", 1)
	if err != nil || len(global) != 256 {
		t.Fatalf("(%d, %v)", len(global), err)
	}
	if global[100] != float64(1_000_000+1000+36) {
		t.Fatalf("element 100 = %v", global[100])
	}
}
