// Package adios implements an ADIOS-style step-based parallel output
// library — the second intermediate library the paper's Section II-A
// names ("HDF5 or ADIOS") — over the MPI and file layers.
//
// The design follows the BP subfiling model:
//
//   - output is organized in steps; within a step every rank Puts local
//     blocks of globally decomposed variables;
//   - ranks are grouped under aggregators; at EndStep each rank ships its
//     blocks to its aggregator over MPI point-to-point messages, and only
//     aggregators touch storage, each appending to its own subfile — N
//     writers become A file streams, the I/O-aggregation idea that makes
//     ADIOS scale;
//   - a metadata index (variable name, step, writer, global offsets,
//     subfile, file offset) is gathered to rank 0 and written at Close.
//
// Real BP output is a directory; to stay flat-namespace friendly this
// implementation uses a name prefix instead (<path>.data.N, <path>.md),
// which also means the library issues no directory operations — the
// Figure 1 property holds through this layer too.
package adios

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"
	"sort"

	"repro/internal/mpi"
	"repro/internal/mpiio"
	"repro/internal/storage"
)

// BlockMeta locates one written block.
type BlockMeta struct {
	Var     string
	Step    int
	Writer  int
	Dims    []int64 // local block dimensions
	Offsets []int64 // position of the block in the global array
	Subfile int
	FileOff int64
	Bytes   int64
}

// index is the gob-encoded table of contents.
type index struct {
	Aggregators int
	Steps       int
	Blocks      []BlockMeta
}

// Writer is the per-rank writing handle.
type Writer struct {
	rank        *mpi.Rank
	fs          storage.FileSystem
	path        string
	aggregators int
	groupSize   int

	step    int
	inStep  bool
	pending []pendingBlock // this rank's blocks for the current step

	// Aggregator-only state.
	sub    *mpiio.File
	subOff int64
	// blocks collected on rank 0 across all steps.
	collected []BlockMeta
	closed    bool
}

type pendingBlock struct {
	meta BlockMeta
	data []byte
}

// OpenWriter creates an ADIOS output collectively. aggregators must divide
// into the communicator reasonably; it is clamped to [1, size].
func OpenWriter(r *mpi.Rank, fs storage.FileSystem, path string, aggregators int) (*Writer, error) {
	if aggregators < 1 {
		aggregators = 1
	}
	if aggregators > r.Size() {
		aggregators = r.Size()
	}
	w := &Writer{
		rank:        r,
		fs:          fs,
		path:        path,
		aggregators: aggregators,
		groupSize:   (r.Size() + aggregators - 1) / aggregators,
	}
	if w.isAggregator() {
		sub, err := mpiio.Open(r, fs, w.subfilePath(w.aggregatorID()), false, mpiio.Options{})
		// The subfile does not exist yet: create it. mpiio's create mode
		// is collective on rank 0, so aggregators create their own files
		// directly through the fs.
		if err != nil {
			h, cerr := fs.Create(r.Ctx, w.subfilePath(w.aggregatorID()))
			if cerr != nil {
				return nil, fmt.Errorf("adios: subfile: %w", cerr)
			}
			if cerr := h.Close(r.Ctx); cerr != nil {
				return nil, cerr
			}
			sub, err = mpiio.Open(r, fs, w.subfilePath(w.aggregatorID()), false, mpiio.Options{})
			if err != nil {
				return nil, fmt.Errorf("adios: reopen subfile: %w", err)
			}
		}
		w.sub = sub
	}
	// Non-aggregators open nothing: subfiles are per-aggregator. Everyone
	// synchronizes before the first step.
	r.Barrier()
	return w, nil
}

func (w *Writer) isAggregator() bool { return w.rank.ID%w.groupSize == 0 }
func (w *Writer) aggregatorID() int  { return w.rank.ID / w.groupSize }
func (w *Writer) myAggregator() int  { return (w.rank.ID / w.groupSize) * w.groupSize }

func (w *Writer) subfilePath(agg int) string {
	return fmt.Sprintf("%s.data.%d", w.path, agg)
}
func (w *Writer) indexPath() string { return w.path + ".md" }

// BeginStep opens a new output step. Collective.
func (w *Writer) BeginStep() error {
	if w.closed {
		return storage.ErrClosed
	}
	if w.inStep {
		return fmt.Errorf("adios: step %d still open: %w", w.step, storage.ErrInvalidArg)
	}
	w.inStep = true
	return nil
}

// PutFloat64 stages a local block of a global float64 array.
func (w *Writer) PutFloat64(name string, dims, offsets []int64, data []float64) error {
	if w.closed {
		return storage.ErrClosed
	}
	if !w.inStep {
		return fmt.Errorf("adios: Put outside a step: %w", storage.ErrInvalidArg)
	}
	if name == "" || len(dims) == 0 || len(dims) != len(offsets) {
		return fmt.Errorf("adios: variable %q dims/offsets: %w", name, storage.ErrInvalidArg)
	}
	elems := int64(1)
	for _, d := range dims {
		if d <= 0 {
			return fmt.Errorf("adios: variable %q dim %d: %w", name, d, storage.ErrInvalidArg)
		}
		elems *= d
	}
	if int64(len(data)) != elems {
		return fmt.Errorf("adios: variable %q: %d elements for dims %v: %w",
			name, len(data), dims, storage.ErrInvalidArg)
	}
	raw := make([]byte, 8*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint64(raw[8*i:], math.Float64bits(v))
	}
	w.pending = append(w.pending, pendingBlock{
		meta: BlockMeta{
			Var:     name,
			Step:    w.step,
			Writer:  w.rank.ID,
			Dims:    append([]int64(nil), dims...),
			Offsets: append([]int64(nil), offsets...),
			Bytes:   int64(len(raw)),
		},
		data: raw,
	})
	return nil
}

// stepTag namespaces point-to-point messages per step.
func stepTag(step int) int { return 1000 + step }

// EndStep ships the step's blocks to the aggregators, which append them to
// their subfiles; block locations are AllGathered so rank 0 accumulates
// the index. Collective.
func (w *Writer) EndStep() error {
	if w.closed {
		return storage.ErrClosed
	}
	if !w.inStep {
		return fmt.Errorf("adios: EndStep outside a step: %w", storage.ErrInvalidArg)
	}

	var located []BlockMeta
	if w.isAggregator() {
		// Gather group members' blocks (including my own), append in rank
		// order for determinism.
		groupBlocks := map[int][]pendingBlock{w.rank.ID: w.pending}
		for member := w.rank.ID + 1; member < w.rank.ID+w.groupSize && member < w.rank.Size(); member++ {
			raw := w.rank.Recv(member, stepTag(w.step))
			blocks, err := decodeBlocks(raw)
			if err != nil {
				return fmt.Errorf("adios: from rank %d: %w", member, err)
			}
			groupBlocks[member] = blocks
		}
		members := make([]int, 0, len(groupBlocks))
		for m := range groupBlocks {
			members = append(members, m)
		}
		sort.Ints(members)
		for _, m := range members {
			for _, b := range groupBlocks[m] {
				b.meta.Subfile = w.aggregatorID()
				b.meta.FileOff = w.subOff
				if _, err := w.sub.WriteAt(w.subOff, b.data); err != nil {
					return fmt.Errorf("adios: subfile append: %w", err)
				}
				w.subOff += int64(len(b.data))
				located = append(located, b.meta)
			}
		}
		if err := w.sub.Sync(); err != nil {
			return err
		}
	} else {
		w.rank.Send(w.myAggregator(), stepTag(w.step), encodeBlocks(w.pending))
	}
	w.pending = nil

	// Index exchange: aggregators contribute their located metadata.
	payload := encodeMeta(located)
	all := w.rank.AllGather(payload)
	if w.rank.ID == 0 {
		for _, p := range all {
			metas, err := decodeMeta(p)
			if err != nil {
				return err
			}
			w.collected = append(w.collected, metas...)
		}
	}
	w.step++
	w.inStep = false
	return nil
}

// Close finishes the output: aggregators close their subfiles, rank 0
// writes the metadata index. Collective.
func (w *Writer) Close() error {
	if w.closed {
		return storage.ErrClosed
	}
	if w.inStep {
		return fmt.Errorf("adios: close inside step %d: %w", w.step, storage.ErrInvalidArg)
	}
	w.closed = true
	// mpiio.Close is collective (it barriers); non-aggregators must match
	// that rendezvous explicitly so every rank performs the same number of
	// collectives.
	if w.sub != nil {
		if err := w.sub.Close(); err != nil {
			return err
		}
	} else {
		w.rank.Barrier()
	}
	w.rank.Barrier()
	if w.rank.ID == 0 {
		var buf bytes.Buffer
		idx := index{Aggregators: w.aggregators, Steps: w.step, Blocks: w.collected}
		if err := gob.NewEncoder(&buf).Encode(&idx); err != nil {
			return fmt.Errorf("adios: encode index: %w", err)
		}
		h, err := w.fs.Create(w.rank.Ctx, w.indexPath())
		if err != nil {
			return fmt.Errorf("adios: index: %w", err)
		}
		if _, err := h.WriteAt(w.rank.Ctx, 0, buf.Bytes()); err != nil {
			h.Close(w.rank.Ctx)
			return err
		}
		if err := h.Sync(w.rank.Ctx); err != nil {
			h.Close(w.rank.Ctx)
			return err
		}
		if err := h.Close(w.rank.Ctx); err != nil {
			return err
		}
	}
	w.rank.Barrier()
	return nil
}

// block wire encoding (rank -> aggregator): gob of []wireBlock.
type wireBlock struct {
	Meta BlockMeta
	Data []byte
}

func encodeBlocks(blocks []pendingBlock) []byte {
	wire := make([]wireBlock, len(blocks))
	for i, b := range blocks {
		wire[i] = wireBlock{Meta: b.meta, Data: b.data}
	}
	var buf bytes.Buffer
	gob.NewEncoder(&buf).Encode(wire)
	return buf.Bytes()
}

func decodeBlocks(raw []byte) ([]pendingBlock, error) {
	var wire []wireBlock
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&wire); err != nil {
		return nil, err
	}
	out := make([]pendingBlock, len(wire))
	for i, b := range wire {
		out[i] = pendingBlock{meta: b.Meta, data: b.Data}
	}
	return out, nil
}

func encodeMeta(metas []BlockMeta) []byte {
	var buf bytes.Buffer
	gob.NewEncoder(&buf).Encode(metas)
	return buf.Bytes()
}

func decodeMeta(raw []byte) ([]BlockMeta, error) {
	var metas []BlockMeta
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&metas); err != nil {
		return nil, err
	}
	return metas, nil
}
