package adios

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"
	"sort"

	"repro/internal/storage"
)

// Reader opens a finished ADIOS output for analysis. Readers are plain
// clients (no communicator needed): they read the index once, then fetch
// block data from the subfiles on demand.
type Reader struct {
	fs   storage.FileSystem
	path string
	idx  index
}

// OpenReader loads the output's metadata index.
func OpenReader(ctx *storage.Context, fs storage.FileSystem, path string) (*Reader, error) {
	r := &Reader{fs: fs, path: path}
	h, err := fs.Open(ctx, path+".md")
	if err != nil {
		return nil, fmt.Errorf("adios: open index: %w", err)
	}
	defer h.Close(ctx)
	info, err := fs.Stat(ctx, path+".md")
	if err != nil {
		return nil, err
	}
	raw := make([]byte, info.Size)
	if _, err := h.ReadAt(ctx, 0, raw); err != nil {
		return nil, fmt.Errorf("adios: read index: %w", err)
	}
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&r.idx); err != nil {
		return nil, fmt.Errorf("adios: decode index: %w", err)
	}
	return r, nil
}

// Steps returns the number of completed steps.
func (r *Reader) Steps() int { return r.idx.Steps }

// Variables lists variable names, sorted.
func (r *Reader) Variables() []string {
	seen := map[string]bool{}
	var out []string
	for _, b := range r.idx.Blocks {
		if !seen[b.Var] {
			seen[b.Var] = true
			out = append(out, b.Var)
		}
	}
	sort.Strings(out)
	return out
}

// Blocks lists the blocks of a variable at a step, sorted by writer rank.
func (r *Reader) Blocks(name string, step int) []BlockMeta {
	var out []BlockMeta
	for _, b := range r.idx.Blocks {
		if b.Var == name && b.Step == step {
			out = append(out, b)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Writer < out[j].Writer })
	return out
}

// ReadBlock fetches one block's float64 payload.
func (r *Reader) ReadBlock(ctx *storage.Context, b BlockMeta) ([]float64, error) {
	h, err := r.fs.Open(ctx, fmt.Sprintf("%s.data.%d", r.path, b.Subfile))
	if err != nil {
		return nil, fmt.Errorf("adios: subfile %d: %w", b.Subfile, err)
	}
	defer h.Close(ctx)
	raw := make([]byte, b.Bytes)
	n, err := h.ReadAt(ctx, b.FileOff, raw)
	if err != nil {
		return nil, err
	}
	if int64(n) != b.Bytes {
		return nil, fmt.Errorf("adios: short block read %d/%d: %w", n, b.Bytes, storage.ErrStaleHandle)
	}
	out := make([]float64, b.Bytes/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return out, nil
}

// ReadGlobal1D assembles a 1-dimensional global variable at a step from
// all of its blocks, using each block's global offset. The global length
// is inferred from the furthest block end.
func (r *Reader) ReadGlobal1D(ctx *storage.Context, name string, step int) ([]float64, error) {
	blocks := r.Blocks(name, step)
	if len(blocks) == 0 {
		return nil, fmt.Errorf("adios: variable %q step %d: %w", name, step, storage.ErrNotFound)
	}
	var total int64
	for _, b := range blocks {
		if len(b.Dims) != 1 {
			return nil, fmt.Errorf("adios: %q is %d-dimensional: %w", name, len(b.Dims), storage.ErrInvalidArg)
		}
		if end := b.Offsets[0] + b.Dims[0]; end > total {
			total = end
		}
	}
	out := make([]float64, total)
	for _, b := range blocks {
		data, err := r.ReadBlock(ctx, b)
		if err != nil {
			return nil, err
		}
		copy(out[b.Offsets[0]:], data)
	}
	return out, nil
}
