package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/blob"
	"repro/internal/cluster"
	"repro/internal/storage"
)

func newKV(t *testing.T, shards int) (*Store, *storage.Context) {
	t.Helper()
	c := cluster.New(cluster.Config{Nodes: 4, Seed: 1})
	ctx := storage.NewContext()
	s, err := Open(ctx, blob.New(c, blob.Config{ChunkSize: 256, Replication: 2}), "kv", shards)
	if err != nil {
		t.Fatal(err)
	}
	return s, ctx
}

func TestOpenValidation(t *testing.T) {
	c := cluster.New(cluster.Config{Nodes: 2, Seed: 1})
	ctx := storage.NewContext()
	if _, err := Open(ctx, blob.New(c, blob.Config{}), "kv", 0); !errors.Is(err, storage.ErrInvalidArg) {
		t.Fatalf("Open with 0 shards: %v", err)
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s, ctx := newKV(t, 4)
	if err := s.Put(ctx, "user:1", []byte("alice")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(ctx, "user:1")
	if err != nil || string(got) != "alice" {
		t.Fatalf("Get = (%q, %v)", got, err)
	}
}

func TestPutOverwrite(t *testing.T) {
	s, ctx := newKV(t, 2)
	s.Put(ctx, "k", []byte("v1"))
	s.Put(ctx, "k", []byte("v2-longer"))
	got, err := s.Get(ctx, "k")
	if err != nil || string(got) != "v2-longer" {
		t.Fatalf("Get after overwrite = (%q, %v)", got, err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestGetMissing(t *testing.T) {
	s, ctx := newKV(t, 2)
	if _, err := s.Get(ctx, "ghost"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("Get missing: %v", err)
	}
}

func TestDelete(t *testing.T) {
	s, ctx := newKV(t, 2)
	s.Put(ctx, "k", []byte("v"))
	if err := s.Delete(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(ctx, "k"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("Get after delete: %v", err)
	}
	if err := s.Delete(ctx, "k"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
	if s.Has("k") {
		t.Fatal("Has after delete")
	}
}

func TestEmptyKeyRejected(t *testing.T) {
	s, ctx := newKV(t, 2)
	if err := s.Put(ctx, "", []byte("v")); !errors.Is(err, storage.ErrInvalidArg) {
		t.Fatalf("empty key: %v", err)
	}
}

func TestEmptyValueAllowed(t *testing.T) {
	s, ctx := newKV(t, 2)
	if err := s.Put(ctx, "k", nil); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(ctx, "k")
	if err != nil || len(got) != 0 {
		t.Fatalf("Get empty value = (%v, %v)", got, err)
	}
}

func TestGarbageAndCompaction(t *testing.T) {
	s, ctx := newKV(t, 2)
	for i := 0; i < 50; i++ {
		s.Put(ctx, fmt.Sprintf("k%d", i), bytes.Repeat([]byte{byte(i)}, 100))
	}
	// Overwrite half, delete a quarter -> garbage accumulates.
	for i := 0; i < 25; i++ {
		s.Put(ctx, fmt.Sprintf("k%d", i), []byte("new"))
	}
	for i := 25; i < 37; i++ {
		s.Delete(ctx, fmt.Sprintf("k%d", i))
	}
	if g := s.GarbageRatio(); g <= 0.2 {
		t.Fatalf("GarbageRatio = %.2f, want substantial garbage", g)
	}
	if err := s.Compact(ctx); err != nil {
		t.Fatal(err)
	}
	if g := s.GarbageRatio(); g != 0 {
		t.Fatalf("GarbageRatio after compact = %.2f", g)
	}
	// All survivors readable with correct values.
	for i := 0; i < 25; i++ {
		got, err := s.Get(ctx, fmt.Sprintf("k%d", i))
		if err != nil || string(got) != "new" {
			t.Fatalf("k%d after compact = (%q, %v)", i, got, err)
		}
	}
	for i := 25; i < 37; i++ {
		if s.Has(fmt.Sprintf("k%d", i)) {
			t.Fatalf("deleted k%d resurrected by compaction", i)
		}
	}
	for i := 37; i < 50; i++ {
		got, err := s.Get(ctx, fmt.Sprintf("k%d", i))
		if err != nil || !bytes.Equal(got, bytes.Repeat([]byte{byte(i)}, 100)) {
			t.Fatalf("k%d after compact = (%v, %v)", i, len(got), err)
		}
	}
}

func TestConcurrentPutsDistinctKeys(t *testing.T) {
	s, _ := newKV(t, 8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := storage.NewContext()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("w%d-k%d", w, i)
				if err := s.Put(ctx, key, []byte(key)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 400 {
		t.Fatalf("Len = %d, want 400", s.Len())
	}
	ctx := storage.NewContext()
	got, err := s.Get(ctx, "w3-k7")
	if err != nil || string(got) != "w3-k7" {
		t.Fatalf("spot check = (%q, %v)", got, err)
	}
}

// Property: a random sequence of puts/deletes matches a map reference.
func TestMatchesMapModelProperty(t *testing.T) {
	type op struct {
		Del bool
		Key uint8
		Val []byte
	}
	f := func(ops []op) bool {
		s, ctx := newKVQuick()
		ref := map[string][]byte{}
		for _, o := range ops {
			key := fmt.Sprintf("key-%d", o.Key%16)
			if o.Del {
				_, exists := ref[key]
				err := s.Delete(ctx, key)
				if exists != (err == nil) {
					return false
				}
				delete(ref, key)
			} else {
				if err := s.Put(ctx, key, o.Val); err != nil {
					return false
				}
				ref[key] = append([]byte(nil), o.Val...)
			}
		}
		if s.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			got, err := s.Get(ctx, k)
			if err != nil || !bytes.Equal(got, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func newKVQuick() (*Store, *storage.Context) {
	c := cluster.New(cluster.Config{Nodes: 3, Seed: 1})
	ctx := storage.NewContext()
	s, _ := Open(ctx, blob.New(c, blob.Config{ChunkSize: 128, Replication: 1}), "kv", 3)
	return s, ctx
}
