// Package kvstore implements a key-value store on top of the blob layer,
// demonstrating the paper's Section I claim that blobs can serve "as a base
// for storage abstractions like key-value stores or time-series databases".
//
// Design: keys are hashed onto a fixed set of shard blobs; each shard blob
// is an append-only record log (put and tombstone records) with an
// in-memory index mapping keys to their latest value's (offset, length).
// Gets are a single blob random read; puts are a single blob append;
// compaction rewrites a shard and truncates it — every operation maps to
// exactly the Section III primitive set.
package kvstore

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sync"

	"repro/internal/storage"
)

// Store is a sharded KV store over a blob store.
type Store struct {
	blobs  storage.BlobStore
	prefix string
	shards []*shard
}

type shard struct {
	key string
	mu  sync.Mutex
	// index maps key -> location of the latest live value.
	index map[string]valueLoc
	// end is the append offset.
	end int64
	// liveBytes tracks non-garbage record bytes, for compaction decisions.
	liveBytes int64
}

type valueLoc struct {
	off int64 // offset of the value bytes within the shard blob
	len int64
}

// Open creates (or reattaches to) a KV store with the given shard count
// under the key prefix. Shard blobs are created on first use.
func Open(ctx *storage.Context, blobs storage.BlobStore, prefix string, shards int) (*Store, error) {
	if shards < 1 {
		return nil, fmt.Errorf("kvstore: shard count %d: %w", shards, storage.ErrInvalidArg)
	}
	s := &Store{blobs: blobs, prefix: prefix}
	for i := 0; i < shards; i++ {
		key := fmt.Sprintf("%s/shard-%04d", prefix, i)
		if err := blobs.CreateBlob(ctx, key); err != nil {
			return nil, fmt.Errorf("kvstore: shard %d: %w", i, err)
		}
		s.shards = append(s.shards, &shard{key: key, index: make(map[string]valueLoc)})
	}
	return s, nil
}

func (s *Store) shardFor(key string) *shard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return s.shards[int(h.Sum32())%len(s.shards)]
}

// record layout: u32 keyLen | u32 valLen (0xFFFFFFFF = tombstone) | key | value
const tombstone = ^uint32(0)

func encodeRecord(key string, value []byte, dead bool) []byte {
	vl := uint32(len(value))
	if dead {
		vl = tombstone
	}
	out := make([]byte, 8+len(key)+len(value))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(key)))
	binary.LittleEndian.PutUint32(out[4:8], vl)
	copy(out[8:], key)
	copy(out[8+len(key):], value)
	return out
}

// Put stores value under key (one blob append).
func (s *Store) Put(ctx *storage.Context, key string, value []byte) error {
	if key == "" {
		return fmt.Errorf("kvstore: empty key: %w", storage.ErrInvalidArg)
	}
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	rec := encodeRecord(key, value, false)
	if _, err := s.blobs.WriteBlob(ctx, sh.key, sh.end, rec); err != nil {
		return fmt.Errorf("kvstore: put %q: %w", key, err)
	}
	if old, ok := sh.index[key]; ok {
		sh.liveBytes -= old.len + int64(len(key)) + 8
	}
	sh.index[key] = valueLoc{off: sh.end + 8 + int64(len(key)), len: int64(len(value))}
	sh.end += int64(len(rec))
	sh.liveBytes += int64(len(rec))
	return nil
}

// Get returns the value under key (one blob random read).
func (s *Store) Get(ctx *storage.Context, key string) ([]byte, error) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	loc, ok := sh.index[key]
	sh.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("kvstore: %q: %w", key, storage.ErrNotFound)
	}
	buf := make([]byte, loc.len)
	n, err := s.blobs.ReadBlob(ctx, sh.key, loc.off, buf)
	if err != nil {
		return nil, fmt.Errorf("kvstore: get %q: %w", key, err)
	}
	if int64(n) != loc.len {
		return nil, fmt.Errorf("kvstore: get %q: short read %d/%d: %w", key, n, loc.len, storage.ErrStaleHandle)
	}
	return buf, nil
}

// Delete removes key (one tombstone append).
func (s *Store) Delete(ctx *storage.Context, key string) error {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	old, ok := sh.index[key]
	if !ok {
		return fmt.Errorf("kvstore: %q: %w", key, storage.ErrNotFound)
	}
	rec := encodeRecord(key, nil, true)
	if _, err := s.blobs.WriteBlob(ctx, sh.key, sh.end, rec); err != nil {
		return fmt.Errorf("kvstore: delete %q: %w", key, err)
	}
	delete(sh.index, key)
	sh.end += int64(len(rec))
	sh.liveBytes -= old.len + int64(len(key)) + 8
	return nil
}

// Has reports whether key exists (index only, no storage call).
func (s *Store) Has(key string) bool {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	_, ok := sh.index[key]
	return ok
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	total := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		total += len(sh.index)
		sh.mu.Unlock()
	}
	return total
}

// GarbageRatio reports the fraction of shard bytes that are dead records,
// the compaction trigger signal.
func (s *Store) GarbageRatio() float64 {
	var end, live int64
	for _, sh := range s.shards {
		sh.mu.Lock()
		end += sh.end
		live += sh.liveBytes
		sh.mu.Unlock()
	}
	if end == 0 {
		return 0
	}
	return float64(end-live) / float64(end)
}

// Compact rewrites every shard, dropping dead records, then truncates the
// shard blob to the new length (the Section III truncate primitive).
func (s *Store) Compact(ctx *storage.Context) error {
	for _, sh := range s.shards {
		sh.mu.Lock()
		// Collect live records by reading current values.
		type liveKV struct {
			key string
			val []byte
		}
		var live []liveKV
		for key, loc := range sh.index {
			buf := make([]byte, loc.len)
			if _, err := s.blobs.ReadBlob(ctx, sh.key, loc.off, buf); err != nil {
				sh.mu.Unlock()
				return fmt.Errorf("kvstore: compact read %q: %w", key, err)
			}
			live = append(live, liveKV{key, buf})
		}
		// Rewrite from offset 0.
		var off int64
		newIndex := make(map[string]valueLoc, len(live))
		for _, kv := range live {
			rec := encodeRecord(kv.key, kv.val, false)
			if _, err := s.blobs.WriteBlob(ctx, sh.key, off, rec); err != nil {
				sh.mu.Unlock()
				return fmt.Errorf("kvstore: compact write %q: %w", kv.key, err)
			}
			newIndex[kv.key] = valueLoc{off: off + 8 + int64(len(kv.key)), len: int64(len(kv.val))}
			off += int64(len(rec))
		}
		if err := s.blobs.TruncateBlob(ctx, sh.key, off); err != nil {
			sh.mu.Unlock()
			return fmt.Errorf("kvstore: compact truncate: %w", err)
		}
		sh.index = newIndex
		sh.end = off
		sh.liveBytes = off
		sh.mu.Unlock()
	}
	return nil
}

// Close deletes nothing (data lives in the blob store); it exists for
// symmetry and future resource handles.
func (s *Store) Close() error { return nil }
