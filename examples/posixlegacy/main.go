// Legacy POSIX application on blob storage — the Section III argument that
// "legacy applications could leverage a POSIX-IO interface implemented atop
// such blob storage" (the CephFS-over-RADOS path).
//
// The "application" below is a typical batch post-processing script: it
// makes working directories, writes intermediate files, renames results
// into place, reads them back, sets bookkeeping xattrs and cleans up —
// never knowing its file system is a flat blob namespace underneath.
//
// Run with: go run ./examples/posixlegacy
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	platform := core.New(core.Options{Nodes: 8, Seed: 3})
	fs, census := platform.TracedPOSIX()
	ctx := platform.NewContext()

	// The legacy application, written against plain POSIX calls.
	must(fs.Mkdir(ctx, "/scratch"))
	must(fs.Mkdir(ctx, "/scratch/job-42"))
	must(fs.Mkdir(ctx, "/results"))

	// Stage 1: produce intermediate shards.
	for shard := 0; shard < 4; shard++ {
		path := fmt.Sprintf("/scratch/job-42/shard-%d.tmp", shard)
		h, err := fs.Create(ctx, path)
		must(err)
		for block := 0; block < 8; block++ {
			_, err = h.WriteAt(ctx, int64(block*4096), payload(shard, block))
			must(err)
		}
		must(h.Sync(ctx))
		must(h.Close(ctx))
	}

	// Stage 2: atomically publish each shard (classic rename commit).
	for shard := 0; shard < 4; shard++ {
		must(fs.Rename(ctx,
			fmt.Sprintf("/scratch/job-42/shard-%d.tmp", shard),
			fmt.Sprintf("/results/shard-%d.dat", shard)))
	}
	must(fs.SetXattr(ctx, "/results/shard-0.dat", "user.job", "42"))

	// Stage 3: verify the published results.
	entries, err := fs.ReadDir(ctx, "/results")
	must(err)
	fmt.Printf("published %d result files:\n", len(entries))
	for _, ent := range entries {
		info, err := fs.Stat(ctx, "/results/"+ent.Name)
		must(err)
		fmt.Printf("  %-14s %6d bytes\n", ent.Name, info.Size)

		h, err := fs.Open(ctx, "/results/"+ent.Name)
		must(err)
		buf := make([]byte, 4096)
		n, err := h.ReadAt(ctx, 0, buf)
		must(err)
		if n == 0 {
			log.Fatalf("%s: empty result", ent.Name)
		}
		must(h.Close(ctx))
	}
	if v, err := fs.GetXattr(ctx, "/results/shard-0.dat", "user.job"); err != nil || v != "42" {
		log.Fatalf("xattr round trip failed: %q %v", v, err)
	}

	// Stage 4: cleanup.
	must(fs.Rmdir(ctx, "/scratch/job-42"))
	must(fs.Rmdir(ctx, "/scratch"))

	// What did the blob layer actually see?
	fmt.Printf("\nstorage-call census: %s\n", census)
	report := core.Mapping(census)
	fmt.Printf("mapping: %d calls direct onto blob primitives, %d emulated (%.1f%% direct)\n",
		report.DirectCalls, report.EmulatedCalls, report.DirectPercent)

	// Show the flat namespace behind the hierarchy.
	infos, err := platform.Blob().Scan(ctx, "results/")
	must(err)
	fmt.Println("\nthe flat namespace behind /results:")
	for _, info := range infos {
		fmt.Printf("  %-24s %6d bytes\n", info.Key, info.Size)
	}
	fmt.Printf("virtual time: %v\n", ctx.Clock.Now())
}
func payload(shard, block int) []byte {
	p := make([]byte, 4096)
	for i := range p {
		p[i] = byte(shard*31 + block*7 + i)
	}
	return p
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
