// Scientific-data pipeline on converged storage: a climate-style MPI
// simulation writes its output through the full HPC I/O stack the paper
// describes (HDF5-like library → MPI-IO → POSIX interface), with the flat
// blob namespace underneath — then an analysis job reads the datasets
// back and feeds summary statistics into the blob-backed time-series
// database. Two "worlds", one storage system.
//
// Run with: go run ./examples/scidata
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/h5"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/tsdb"
)

const (
	ranks     = 4
	timesteps = 6
	rows      = 16 // decomposed across ranks
	cols      = 64
)

func main() {
	platform := core.New(core.Options{Nodes: 8, Seed: 21})
	fs, census := platform.TracedPOSIX()

	// Run preparation (offline in the paper's methodology): the output
	// directory exists before the MPI phase starts.
	if err := fs.Mkdir(platform.NewContext(), "/runs"); err != nil {
		log.Fatal(err)
	}

	// --- Phase 1: the simulation writes one dataset per timestep. ---
	errs := mpi.Run(ranks, sim.DefaultCostModel(), func(r *mpi.Rank) error {
		f, err := h5.Create(r, fs, "/runs/ocean-2017.h5")
		if err != nil {
			return err
		}
		if r.ID == 0 {
			if err := f.SetAttr("model", "mini-MOM"); err != nil {
				return err
			}
		}
		myRows := int64(rows / ranks)
		start := int64(r.ID) * myRows
		for step := 0; step < timesteps; step++ {
			ds, err := f.CreateDataset(fmt.Sprintf("sst/step-%03d", step), h5.Float64, []int64{rows, cols})
			if err != nil {
				return err
			}
			if err := ds.SetAttr("units", "degC"); err != nil {
				return err
			}
			slab := make([]float64, myRows*cols)
			for i := range slab {
				row := start + int64(i)/cols
				col := int64(i) % cols
				// A smooth, step-dependent field.
				slab[i] = 15 + 0.1*float64(step) + 0.01*float64(row) - 0.005*float64(col)
			}
			if err := ds.WriteFloat64([]int64{start, 0}, []int64{myRows, cols}, slab); err != nil {
				return err
			}
			r.Barrier() // timestep boundary
		}
		return f.Close()
	})
	if err := mpi.FirstError(errs); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulation wrote %d timesteps of a %dx%d field across %d ranks\n",
		timesteps, rows, cols, ranks)

	// --- Phase 2: analysis reads each dataset, summarizes into the TSDB. ---
	db, err := platform.TSDB("analysis", time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Date(2017, 9, 5, 0, 0, 0, 0, time.UTC)
	errs = mpi.Run(1, sim.DefaultCostModel(), func(r *mpi.Rank) error {
		f, err := h5.Open(r, fs, "/runs/ocean-2017.h5")
		if err != nil {
			return err
		}
		defer f.Close()
		if model, ok := f.Attr("model"); ok {
			fmt.Printf("analyzing output of %s: %d datasets\n", model, len(f.Datasets()))
		}
		field := make([]float64, rows*cols)
		for step := 0; step < timesteps; step++ {
			ds, err := f.Dataset(fmt.Sprintf("sst/step-%03d", step))
			if err != nil {
				return err
			}
			if err := ds.ReadFloat64([]int64{0, 0}, []int64{rows, cols}, field); err != nil {
				return err
			}
			var sum float64
			for _, v := range field {
				sum += v
			}
			mean := sum / float64(len(field))
			if err := db.Append(r.Ctx, "sst.mean", tsdb.Point{
				T: t0.Add(time.Duration(step) * time.Minute), V: mean,
			}); err != nil {
				return err
			}
		}
		return nil
	})
	if err := mpi.FirstError(errs); err != nil {
		log.Fatal(err)
	}

	// --- Phase 3: query the time series. ---
	ctx := platform.NewContext()
	pts, err := db.Query(ctx, "sst.mean", t0, t0.Add(time.Hour))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("mean sea-surface temperature per timestep:")
	for i, p := range pts {
		fmt.Printf("  step %d: %.3f degC\n", i, p.V)
	}
	if len(pts) >= 2 && pts[len(pts)-1].V <= pts[0].V {
		log.Fatal("expected warming trend in the synthetic field")
	}

	// The whole pipeline issued only file operations below the libraries.
	fmt.Printf("\nstorage census of the simulation+analysis: %s\n", census)
	fmt.Printf("directory operations issued by the science stack: %d\n",
		census.KindCount(storage.CallDirOp))
	fmt.Printf("virtual time: %v\n", ctx.Clock.Now())
}
