// Quickstart: a tour of the converged storage platform's public API — the
// native blob primitives (Section III), the POSIX view over the same data,
// and the call-census tracer.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/storage"
)

func main() {
	// One platform = one simulated cluster running one blob store.
	platform := core.New(core.Options{Nodes: 8, Seed: 42})
	ctx := platform.NewContext()
	blobs := platform.Blob()

	// --- The Section III primitive set. ---
	must(blobs.CreateBlob(ctx, "experiments/run-001/params"))
	_, err := blobs.WriteBlob(ctx, "experiments/run-001/params", 0, []byte("alpha=0.5 beta=2"))
	must(err)

	buf := make([]byte, 16)
	n, err := blobs.ReadBlob(ctx, "experiments/run-001/params", 0, buf)
	must(err)
	fmt.Printf("blob read:   %q\n", buf[:n])

	size, err := blobs.BlobSize(ctx, "experiments/run-001/params")
	must(err)
	fmt.Printf("blob size:   %d bytes\n", size)

	must(blobs.CreateBlob(ctx, "experiments/run-002/params"))
	infos, err := blobs.Scan(ctx, "experiments/")
	must(err)
	fmt.Printf("scan:        %d blobs under experiments/\n", len(infos))

	// --- The same data through the POSIX view (the legacy path). ---
	fs := platform.POSIX()
	h, err := fs.Open(ctx, "/experiments/run-001/params")
	must(err)
	n, err = h.ReadAt(ctx, 0, buf)
	must(err)
	fmt.Printf("posix read:  %q (same bytes, file interface)\n", buf[:n])
	must(h.Close(ctx))

	// --- Tracing: measure an application's storage-call mix. ---
	traced, census := platform.TracedPOSIX()
	must(traced.Mkdir(ctx, "/workdir"))
	out, err := traced.Create(ctx, "/workdir/output.dat")
	must(err)
	for i := 0; i < 10; i++ {
		_, err = out.WriteAt(ctx, int64(i*1024), make([]byte, 1024))
		must(err)
	}
	must(out.Close(ctx))

	fmt.Printf("census:      %s\n", census)
	report := core.Mapping(census)
	fmt.Printf("mapping:     %.1f%% of calls map directly onto blob primitives\n", report.DirectPercent)

	// Virtual time: how long the session would have taken on the simulated
	// cluster (GbE network, HDD storage, 3-way replication).
	fmt.Printf("virtual time: %v\n", ctx.Clock.Now())
	_ = storage.ErrNotFound // the error taxonomy lives in internal/storage
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
