// Checkpoint/restart on blob storage — the BlobCR use case the paper's
// related-work section cites ([49] Nicolae & Cappello): an MPI application
// periodically checkpoints every rank's state into one blob per epoch;
// after a simulated failure, the survivors locate the newest complete
// checkpoint with a namespace scan and restart from it.
//
// Run with: go run ./examples/checkpoint
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/sim"
)

const (
	ranks     = 8
	stateSize = 256 << 10 // per-rank state
	epochs    = 5
)

func main() {
	platform := core.New(core.Options{Nodes: 8, Seed: 7})
	blobs := platform.Blob()

	// --- Phase 1: run the application, checkpointing each epoch. ---
	errs := mpi.Run(ranks, sim.DefaultCostModel(), func(r *mpi.Rank) error {
		state := make([]byte, stateSize)
		for epoch := 0; epoch < epochs; epoch++ {
			compute(state, epoch, r.ID)

			key := fmt.Sprintf("ckpt/epoch-%04d", epoch)
			if r.ID == 0 {
				if err := blobs.CreateBlob(r.Ctx, key); err != nil {
					return err
				}
			}
			r.Barrier()
			// Every rank writes its slab — random blob writes, exactly the
			// capability HDFS-style write-once storage lacks.
			off := int64(r.ID) * stateSize
			if _, err := blobs.WriteBlob(r.Ctx, key, off, state); err != nil {
				return err
			}
			r.Barrier()
		}
		return nil
	})
	if err := mpi.FirstError(errs); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpointed %d epochs x %d ranks (%d KB each)\n", epochs, ranks, stateSize>>10)

	// --- Phase 2: the cluster "fails"; find the newest checkpoint. ---
	ctx := platform.NewContext()
	infos, err := blobs.Scan(ctx, "ckpt/")
	if err != nil {
		log.Fatal(err)
	}
	var complete []string
	for _, info := range infos {
		if info.Size == int64(ranks)*stateSize {
			complete = append(complete, info.Key)
		}
	}
	if len(complete) == 0 {
		log.Fatal("no complete checkpoint found")
	}
	sort.Strings(complete)
	latest := complete[len(complete)-1]
	fmt.Printf("restart point: %s (%d complete checkpoints found by scan)\n", latest, len(complete))

	// --- Phase 3: restart — every rank reloads and verifies its slab. ---
	errs = mpi.Run(ranks, sim.DefaultCostModel(), func(r *mpi.Rank) error {
		state := make([]byte, stateSize)
		off := int64(r.ID) * stateSize
		n, err := blobs.ReadBlob(r.Ctx, latest, off, state)
		if err != nil {
			return err
		}
		if n != stateSize {
			return fmt.Errorf("rank %d: short restore %d/%d", r.ID, n, stateSize)
		}
		want := make([]byte, stateSize)
		for epoch := 0; epoch < epochs; epoch++ {
			compute(want, epoch, r.ID)
		}
		if string(state) != string(want) {
			return fmt.Errorf("rank %d: restored state diverges", r.ID)
		}
		return nil
	})
	if err := mpi.FirstError(errs); err != nil {
		log.Fatal(err)
	}
	fmt.Println("all ranks restored and verified their state")

	// Housekeeping: retention — drop all but the latest checkpoint.
	dropped := 0
	for _, key := range complete[:len(complete)-1] {
		if err := blobs.DeleteBlob(ctx, key); err != nil {
			log.Fatal(err)
		}
		dropped++
	}
	fmt.Printf("retention: dropped %d old checkpoints, kept %s\n",
		dropped, strings.TrimPrefix(latest, "ckpt/"))
}

// compute advances a rank's state deterministically, so restored state can
// be verified bit-for-bit.
func compute(state []byte, epoch, rank int) {
	rng := sim.NewRNG(uint64(epoch)<<16 | uint64(rank) | 1)
	for i := range state {
		state[i] ^= byte(rng.Uint64())
	}
}
