// Analytics convergence demo: the same Spark-style job runs unmodified on
// the HDFS-like baseline and on the blob-backed POSIX adapter — the
// storage-based convergence the paper proposes. The run prints both call
// censuses and virtual completion times side by side.
//
// Run with: go run ./examples/analytics
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"repro/internal/blob"
	"repro/internal/blobfs"
	"repro/internal/cluster"
	"repro/internal/fs/relaxedfs"
	"repro/internal/sparksim"
	"repro/internal/storage"
	"repro/internal/trace"
)

const (
	splits    = 6
	splitSize = 512 << 10
	executors = 4
)

func main() {
	fmt.Println("running the same analytics job on both storage stacks:")

	hdfsTime, hdfsCensus := runOn("relaxedfs (HDFS-like baseline)", relaxedfs.New(
		cluster.New(cluster.Config{Nodes: 9, Seed: 1}),
		relaxedfs.Config{BlockSize: 4 << 20}))

	blobTime, blobCensus := runOn("blobfs (flat blob namespace)", blobfs.New(blob.New(
		cluster.New(cluster.Config{Nodes: 9, Seed: 1}),
		blob.Config{ChunkSize: 4 << 20, Replication: 3})))

	fmt.Println("\nconvergence summary:")
	fmt.Printf("  %-34s %14s %14s\n", "", "relaxedfs", "blobfs")
	fmt.Printf("  %-34s %14v %14v\n", "virtual completion time", hdfsTime.Round(time.Microsecond), blobTime.Round(time.Microsecond))
	fmt.Printf("  %-34s %14d %14d\n", "total storage calls", hdfsCensus.TotalCalls(), blobCensus.TotalCalls())
	fmt.Printf("  %-34s %13.2f%% %13.2f%%\n", "file-operation share",
		hdfsCensus.Percent(storage.CallFileRead)+hdfsCensus.Percent(storage.CallFileWrite),
		blobCensus.Percent(storage.CallFileRead)+blobCensus.Percent(storage.CallFileWrite))
	fmt.Printf("  %-34s %14d %14d\n", "directory operations (emulated on blobs)",
		hdfsCensus.KindCount(storage.CallDirOp), blobCensus.KindCount(storage.CallDirOp))
	fmt.Println("\nthe job ran unmodified on both stacks — the paper's convergence claim.")
}

func runOn(label string, fs storage.FileSystem) (time.Duration, *trace.Census) {
	if err := prepare(fs); err != nil {
		log.Fatalf("%s: setup: %v", label, err)
	}
	census := trace.NewCensus()
	census.MarkInputDir("/input/events")
	engine := sparksim.NewEngine(trace.Wrap(fs, census), executors)
	engine.SetChunkSize(16 << 10)

	ctx := storage.NewContext()
	res, err := engine.Run(ctx, sparksim.App{
		Name:        "clickstream-agg",
		InputDir:    "/input/events",
		OutputDir:   "/output/daily",
		OutputTasks: 4,
		OutputBytes: func(task int, inputBytes int64) int64 { return inputBytes / 16 },
	})
	if err != nil {
		log.Fatalf("%s: run: %v", label, err)
	}
	fmt.Printf("\n[%s]\n", label)
	fmt.Printf("  map tasks=%d read=%d written=%d\n", res.MapTasks, res.BytesRead, res.BytesWritten)
	fmt.Printf("  census: %s\n", census)
	return ctx.Clock.Now(), census
}

func prepare(fs storage.FileSystem) error {
	ctx := storage.NewContext()
	for _, d := range []string{"/user", "/user/spark", "/user/spark/.sparkStaging",
		"/spark-logs", "/input", "/input/events", "/output", "/output/daily"} {
		if err := fs.Mkdir(ctx, d); err != nil && !errors.Is(err, storage.ErrExists) {
			return err
		}
	}
	buf := make([]byte, 64<<10)
	for i := range buf {
		buf[i] = byte("abcdefghij klmnopqrst"[i%21])
	}
	for s := 0; s < splits; s++ {
		h, err := fs.Create(ctx, fmt.Sprintf("/input/events/part-%04d", s))
		if err != nil {
			return err
		}
		var off int64
		for off < splitSize {
			n, err := h.WriteAt(ctx, off, buf)
			if err != nil {
				return err
			}
			off += int64(n)
		}
		if err := h.Close(ctx); err != nil {
			return err
		}
	}
	return nil
}
