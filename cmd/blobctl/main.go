// Command blobctl is an interactive shell over a fresh converged-storage
// platform: it reads commands from stdin, one per line, and executes them
// against the blob store. Useful for exploring the Section III primitive
// set by hand.
//
// Commands:
//
//	create KEY                 register an empty blob
//	write  KEY OFFSET TEXT...  write text at an offset
//	read   KEY OFFSET LEN      read and print a range
//	size   KEY                 print the blob size
//	trunc  KEY SIZE            truncate the blob
//	rm     KEY                 delete the blob
//	ls     [PREFIX]            scan the namespace
//	time                       print the session's virtual time
//	help                       print this list
//	quit                       exit
package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/storage"
)

func main() {
	platform := core.New(core.Options{})
	ctx := platform.NewContext()
	store := platform.Blob()

	in := bufio.NewScanner(os.Stdin)
	interactive := isTerminalHint()
	if interactive {
		fmt.Println("blobctl: converged blob store shell (type 'help')")
	}
	for {
		if interactive {
			fmt.Print("> ")
		}
		if !in.Scan() {
			return
		}
		line := strings.TrimSpace(in.Text())
		if line == "" {
			continue
		}
		if line == "quit" || line == "exit" {
			return
		}
		if err := execute(os.Stdout, store, ctx, line); err != nil {
			if err == io.EOF {
				return
			}
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
		}
	}
}

// isTerminalHint avoids prompts when input is piped; stdin being a pipe is
// approximated by Stat mode (good enough for a demo shell).
func isTerminalHint() bool {
	info, err := os.Stdin.Stat()
	if err != nil {
		return false
	}
	return info.Mode()&os.ModeCharDevice != 0
}

func execute(w io.Writer, store storage.BlobStore, ctx *storage.Context, line string) error {
	fields := strings.Fields(line)
	cmd, args := fields[0], fields[1:]
	switch cmd {
	case "help":
		fmt.Fprintln(w, "create write read size trunc rm ls time quit")
		return nil
	case "create":
		if len(args) != 1 {
			return fmt.Errorf("usage: create KEY")
		}
		return store.CreateBlob(ctx, args[0])
	case "write":
		if len(args) < 3 {
			return fmt.Errorf("usage: write KEY OFFSET TEXT...")
		}
		off, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			return fmt.Errorf("offset: %w", err)
		}
		data := strings.Join(args[2:], " ")
		n, err := store.WriteBlob(ctx, args[0], off, []byte(data))
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %d bytes\n", n)
		return nil
	case "read":
		if len(args) != 3 {
			return fmt.Errorf("usage: read KEY OFFSET LEN")
		}
		off, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			return fmt.Errorf("offset: %w", err)
		}
		length, err := strconv.Atoi(args[2])
		if err != nil || length < 0 {
			return fmt.Errorf("length: %v", args[2])
		}
		buf := make([]byte, length)
		n, err := store.ReadBlob(ctx, args[0], off, buf)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%q\n", buf[:n])
		return nil
	case "size":
		if len(args) != 1 {
			return fmt.Errorf("usage: size KEY")
		}
		size, err := store.BlobSize(ctx, args[0])
		if err != nil {
			return err
		}
		fmt.Fprintln(w, size)
		return nil
	case "trunc":
		if len(args) != 2 {
			return fmt.Errorf("usage: trunc KEY SIZE")
		}
		size, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			return fmt.Errorf("size: %w", err)
		}
		return store.TruncateBlob(ctx, args[0], size)
	case "rm":
		if len(args) != 1 {
			return fmt.Errorf("usage: rm KEY")
		}
		return store.DeleteBlob(ctx, args[0])
	case "ls":
		prefix := ""
		if len(args) > 0 {
			prefix = args[0]
		}
		infos, err := store.Scan(ctx, prefix)
		if err != nil {
			return err
		}
		for _, info := range infos {
			fmt.Fprintf(w, "%10d  %s\n", info.Size, info.Key)
		}
		fmt.Fprintf(w, "(%d blobs)\n", len(infos))
		return nil
	case "time":
		fmt.Fprintln(w, ctx.Clock.Now())
		return nil
	default:
		return fmt.Errorf("unknown command %q (try help)", cmd)
	}
}
