package main

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/storage"
)

func newShell() (storage.BlobStore, *storage.Context) {
	platform := core.New(core.Options{Nodes: 4})
	return platform.Blob(), platform.NewContext()
}

func run(t *testing.T, store storage.BlobStore, ctx *storage.Context, lines ...string) string {
	t.Helper()
	var out strings.Builder
	for _, line := range lines {
		if err := execute(&out, store, ctx, line); err != nil {
			t.Fatalf("%q: %v", line, err)
		}
	}
	return out.String()
}

func TestShellRoundTrip(t *testing.T) {
	store, ctx := newShell()
	out := run(t, store, ctx,
		"create greeting",
		"write greeting 0 hello blob world",
		"read greeting 6 4",
		"size greeting",
		"ls",
	)
	for _, want := range []string{"wrote 16 bytes", `"blob"`, "16", "greeting", "(1 blobs)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestShellTruncateAndRemove(t *testing.T) {
	store, ctx := newShell()
	out := run(t, store, ctx,
		"create k",
		"write k 0 0123456789",
		"trunc k 4",
		"read k 0 10",
		"rm k",
		"ls",
	)
	if !strings.Contains(out, `"0123"`) {
		t.Fatalf("truncate not applied:\n%s", out)
	}
	if !strings.Contains(out, "(0 blobs)") {
		t.Fatalf("rm not applied:\n%s", out)
	}
}

func TestShellErrors(t *testing.T) {
	store, ctx := newShell()
	var out strings.Builder
	cases := []string{
		"bogus",
		"create",
		"write k",
		"write k notanumber data",
		"read k 0",
		"read k 0 -3",
		"size",
		"trunc k",
		"rm",
	}
	for _, line := range cases {
		if err := execute(&out, store, ctx, line); err == nil {
			t.Fatalf("%q did not error", line)
		}
	}
	// Operating on a missing blob surfaces the store's error.
	if err := execute(&out, store, ctx, "size ghost"); err == nil {
		t.Fatal("size on missing blob did not error")
	}
}

func TestShellTimeAndHelp(t *testing.T) {
	store, ctx := newShell()
	out := run(t, store, ctx, "help", "time")
	if !strings.Contains(out, "create write read") {
		t.Fatalf("help missing:\n%s", out)
	}
	if !strings.Contains(out, "s") { // a duration string
		t.Fatalf("time missing:\n%s", out)
	}
}

func TestShellScanPrefix(t *testing.T) {
	store, ctx := newShell()
	out := run(t, store, ctx,
		"create logs/a",
		"create logs/b",
		"create data/x",
		"ls logs/",
	)
	if !strings.Contains(out, "(2 blobs)") {
		t.Fatalf("prefix scan wrong:\n%s", out)
	}
	if strings.Contains(out, "data/x") {
		t.Fatalf("prefix scan leaked other namespace:\n%s", out)
	}
}
