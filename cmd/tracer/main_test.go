package main

import (
	"testing"

	"repro/internal/storage"
	"repro/internal/workloads"
)

func fastCfg() workloads.Config {
	return workloads.Config{Factor: 1 << 16, Chunk: 512, Ranks: 4, Executors: 2}.WithDefaults()
}

func TestRunAppHPCDefaultsToPosix(t *testing.T) {
	census, err := runApp("BLAST", "", fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if census.TotalCalls() == 0 {
		t.Fatal("no calls recorded")
	}
	if census.Profile() != "Read-intensive" {
		t.Fatalf("BLAST profile = %q", census.Profile())
	}
}

func TestRunAppSparkDefaultsToRelaxed(t *testing.T) {
	census, err := runApp("Grep", "", fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if census.OpendirInput() != 1 {
		t.Fatalf("input listings = %d", census.OpendirInput())
	}
	if census.Profile() != "Read-intensive" {
		t.Fatalf("Grep profile = %q", census.Profile())
	}
}

func TestRunAppOnBlobBackend(t *testing.T) {
	for _, app := range []string{"EH / MPI", "Sort"} {
		census, err := runApp(app, "blob", fastCfg())
		if err != nil {
			t.Fatalf("%s on blob: %v", app, err)
		}
		if census.TotalCalls() == 0 {
			t.Fatalf("%s on blob recorded nothing", app)
		}
	}
}

func TestRunAppUnknown(t *testing.T) {
	if _, err := runApp("NotAnApp", "", fastCfg()); err == nil {
		t.Fatal("unknown app accepted")
	}
	if _, err := runApp("Sort", "bogus-backend", fastCfg()); err == nil {
		t.Fatal("unknown backend accepted")
	}
}

func TestNewBackendKinds(t *testing.T) {
	for _, kind := range []string{"posix", "relaxed", "blob"} {
		fs, err := newBackend(kind)
		if err != nil || fs == nil {
			t.Fatalf("%s: %v", kind, err)
		}
		// Minimal smoke: the backend accepts a root mkdir or reports a
		// sensible error class.
		ctx := storage.NewContext()
		if err := fs.Mkdir(ctx, "/smoke"); err != nil {
			t.Fatalf("%s mkdir: %v", kind, err)
		}
	}
	if _, err := newBackend("nope"); err == nil {
		t.Fatal("invalid backend accepted")
	}
}
