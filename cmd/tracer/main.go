// Command tracer runs one of the paper's nine applications under the
// storage-call interceptor against a chosen backend and prints its census —
// the per-application view behind Figures 1–2 and Table I.
//
// Usage:
//
//	tracer -app BLAST [-backend posix|relaxed|blob] [-factor N]
//	tracer -list
//
// HPC applications (BLAST, MOM, EH, "EH / MPI", RT) default to the posix
// backend; Spark applications (Sort, CC, Grep, DT, Tokenizer) default to
// relaxed. Any application can be pointed at the blob backend to see the
// Section III mapping in action.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/blob"
	"repro/internal/blobfs"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fs/posixfs"
	"repro/internal/fs/relaxedfs"
	"repro/internal/sparksim"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	app := flag.String("app", "", "application name (see -list)")
	backend := flag.String("backend", "", "posix, relaxed, or blob (default: the app's native side)")
	factor := flag.Int64("factor", 1024, "divide the paper's byte volumes by this factor")
	chunk := flag.Int("chunk", 4096, "per-call I/O unit in bytes")
	list := flag.Bool("list", false, "list application names and exit")
	asJSON := flag.Bool("json", false, "emit the census as JSON")
	flag.Parse()

	if *list {
		fmt.Println("HPC / MPI:    BLAST, MOM, EH, \"EH / MPI\", RT")
		fmt.Println("Cloud / Spark: Sort, CC, Grep, DT, Tokenizer")
		return
	}
	if *app == "" {
		fmt.Fprintln(os.Stderr, "tracer: -app is required (try -list)")
		os.Exit(2)
	}

	cfg := workloads.Config{Factor: *factor, Chunk: *chunk}.WithDefaults()
	census, err := runApp(*app, *backend, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracer: %v\n", err)
		os.Exit(1)
	}

	if *asJSON {
		raw, err := census.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracer: %v\n", err)
			os.Exit(1)
		}
		os.Stdout.Write(raw)
		fmt.Println()
		return
	}

	fmt.Printf("application: %s\n\n", *app)
	fmt.Printf("%-24s %12d\n", "total calls", census.TotalCalls())
	for k := 0; k < storage.NumCallKinds; k++ {
		kind := storage.CallKind(k)
		fmt.Printf("%-24s %12d (%6.2f%%)\n", kind, census.KindCount(kind), census.Percent(kind))
	}
	fmt.Printf("\n%-24s %12d\n", "bytes read", census.BytesRead())
	fmt.Printf("%-24s %12d\n", "bytes written", census.BytesWritten())
	fmt.Printf("%-24s %12.2f\n", "R/W ratio", census.RWRatio())
	fmt.Printf("%-24s %12s\n", "profile", census.Profile())

	m := core.Mapping(census)
	fmt.Printf("\nblob-primitive mapping: %d direct, %d emulated (%.2f%% direct)\n",
		m.DirectCalls, m.EmulatedCalls, m.DirectPercent)
	fmt.Println("\nper-operation counts:")
	for _, op := range census.Ops() {
		fmt.Printf("  %-12s %10d\n", op, census.OpCount(op))
	}
}

func newBackend(kind string) (storage.FileSystem, error) {
	c := cluster.New(cluster.Config{Nodes: 9, Seed: 1})
	switch kind {
	case "posix":
		return posixfs.NewStrict(c), nil
	case "relaxed":
		return relaxedfs.New(c, relaxedfs.Config{BlockSize: 4 << 20}), nil
	case "blob":
		return blobfs.New(blob.New(c, blob.Config{ChunkSize: 4 << 20, Replication: 3})), nil
	default:
		return nil, fmt.Errorf("unknown backend %q", kind)
	}
}

func runApp(name, backend string, cfg workloads.Config) (*trace.Census, error) {
	if hpc, err := workloads.HPCAppByName(name); err == nil {
		if backend == "" {
			backend = "posix"
		}
		fs, err := newBackend(backend)
		if err != nil {
			return nil, err
		}
		if err := hpc.Setup(fs, cfg); err != nil {
			return nil, fmt.Errorf("setup: %w", err)
		}
		census := trace.NewCensus()
		if err := hpc.Run(trace.Wrap(fs, census), cfg); err != nil {
			return nil, fmt.Errorf("run: %w", err)
		}
		return census, nil
	}

	spark, err := workloads.SparkAppByName(cfg, name)
	if err != nil {
		return nil, fmt.Errorf("unknown application %q", name)
	}
	if backend == "" {
		backend = "relaxed"
	}
	fs, err := newBackend(backend)
	if err != nil {
		return nil, err
	}
	if err := workloads.SetupSparkEnv(fs); err != nil {
		return nil, err
	}
	if err := workloads.SetupSparkApp(fs, spark); err != nil {
		return nil, err
	}
	census := trace.NewCensus()
	census.MarkInputDir(spark.App.InputDir)
	engine := sparksim.NewEngine(trace.Wrap(fs, census), cfg.Executors)
	engine.SetChunkSize(cfg.Chunk)
	if _, err := workloads.RunSpark(engine, storage.NewContext(), spark); err != nil {
		return nil, fmt.Errorf("run: %w", err)
	}
	return census, nil
}
