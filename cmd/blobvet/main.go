// Blobvet runs the internal/lint analyzer suite, which mechanically
// enforces the data plane's prose contracts (dispatch pool nested-wait
// rules, single WAL append path, virtual-time determinism, errors.Is
// sentinel discipline, stripe-lock pairing).
//
// Standalone:
//
//	go run ./cmd/blobvet ./...
//	blobvet -c workerlatch,stripelock ./internal/blob/...
//
// As a vet tool (unitchecker protocol):
//
//	go vet -vettool=$(pwd)/bin/blobvet ./...
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	// go vet probes its -vettool with -V=full (for the build cache
	// key) and -flags (for supported flag names) before handing over
	// per-package .cfg files.
	args := os.Args[1:]
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full" || args[0] == "--V=full":
			printVersion()
			return
		case args[0] == "-flags" || args[0] == "--flags":
			fmt.Println("[]")
			return
		case strings.HasSuffix(args[0], ".cfg"):
			os.Exit(vetUnit(args[0]))
		}
	}
	os.Exit(standalone(args))
}

func printVersion() {
	// Mirrors the cmd/go tool version handshake: the last field must
	// be a buildID derived from the executable so vet results cache
	// correctly across tool rebuilds.
	name := filepath.Base(os.Args[0])
	data, err := os.ReadFile(os.Args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	h := sha256.Sum256(data)
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", name, string(h[:12]))
}

func standalone(args []string) int {
	fs := flag.NewFlagSet("blobvet", flag.ExitOnError)
	only := fs.String("c", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: blobvet [-c analyzers] [-list] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		var picked []*lint.Analyzer
		for _, name := range strings.Split(*only, ",") {
			a := lint.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "blobvet: unknown analyzer %q\n", name)
				return 2
			}
			picked = append(picked, a)
		}
		analyzers = picked
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "blobvet:", err)
		return 2
	}
	pkgs, err := lint.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "blobvet:", err)
		return 2
	}
	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

func vetUnit(cfgPath string) int {
	pkg, vetxOutput, skip, err := lint.LoadVetUnit(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "blobvet:", err)
		return 2
	}
	// cmd/go requires the facts file to exist even though blobvet
	// exports no facts.
	if vetxOutput != "" {
		if err := os.WriteFile(vetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "blobvet:", err)
			return 2
		}
	}
	if skip || pkg == nil {
		return 0
	}
	diags := lint.Run([]*lint.Package{pkg}, lint.Analyzers())
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
