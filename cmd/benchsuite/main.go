// Command benchsuite regenerates every table and figure of the paper's
// evaluation section, plus the Section III mapping analysis and the
// Section V future-work experiment.
//
// Usage:
//
//	benchsuite [-exp all|table1|fig1|fig2|table2|mapping|futurework|hotpath|recovery|faults|frontends|rebalance]
//	           [-factor N] [-chunk N] [-ranks N] [-executors N]
//	           [-hotpath-out FILE] [-hotpath-baseline FILE]
//	           [-recovery-out FILE] [-recovery-ratio R]
//	           [-faults-out FILE] [-faults-ratio R]
//	           [-frontends-out FILE] [-frontends-ratio R]
//	           [-rebalance-out FILE] [-rebalance-ratio R]
//
// The default factor 1024 scales the paper's GB volumes to MB; the chunk
// scales the per-call I/O unit accordingly (see internal/workloads).
//
// The hotpath experiment is the benchcheck target: it runs the data-plane
// micro-benchmarks (BenchmarkHotPathRead / BenchmarkHotPathWrite /
// BenchmarkHotPathWriteParallel plus a WAL lane-count sweep, with
// allocation accounting equivalent to `go test -bench HotPath -benchmem`)
// and writes the results to -hotpath-out (default BENCH_hotpath.json) so
// successive PRs have a perf trajectory to compare against. Two gates run
// before the file is written:
//
//   - with -hotpath-baseline, the committed file is read BEFORE the
//     results overwrite it and the run fails if the write path's
//     allocation volume regressed against it;
//
//   - the parallel/serial write ratio is checked against -hotpath-ratio
//     (default: a hardware-aware bound chosen by GOMAXPROCS, see
//     bench.CheckWriteScaling; 0 disables), failing the run if the
//     sharded-lane WAL stops delivering parallel write scaling.
//
//     go run ./cmd/benchsuite -exp hotpath -hotpath-baseline BENCH_hotpath.json
//
// The recovery experiment is the other benchcheck target: the
// serial-vs-parallel crash-recovery sweep (WAL lane counts x cold-store
// sizes) written to -recovery-out (default BENCH_recovery.json), gated by
// -recovery-ratio (default: a GOMAXPROCS-aware bound, see
// bench.CheckRecoveryScaling; 0 disables) BEFORE the file is written.
//
//	go run ./cmd/benchsuite -exp recovery
//
// The faults experiment is the failure-domain benchcheck target: healthy vs
// degraded full-blob overwrites and the rejoin-resync cycle, written to
// -faults-out (default BENCH_faults.json). The gate reads the deterministic
// /virtual result pair (simulated cost, identical on every host) rather
// than wall-clock ns/op, bounding the degraded/healthy write cost ratio by
// -faults-ratio (default 1.25, see bench.CheckFaults; 0 disables) BEFORE
// the file is written.
//
//	go run ./cmd/benchsuite -exp faults
//
// The frontends experiment is the converged-access-layer benchcheck
// target: the IOR-style HPC pattern, the Sort shuffle, and the S3 put/get
// cycle, each over one blob data plane with a deterministic /virtual twin,
// written to -frontends-out (default BENCH_frontends.json). The gate reads
// the BenchmarkFrontendRename virtual pair, requiring the server-side
// rename fast path to cost at most -frontends-ratio of the client-side
// copy loop (default 0.95, see bench.CheckFrontends; 0 disables) BEFORE
// the file is written.
//
//	go run ./cmd/benchsuite -exp frontends
//
// The rebalance experiment is the elasticity benchcheck target: the
// foreground p99 of a mixed read / 2PC-write workload during a live node
// join and drain, against the same workload quiesced, written to
// -rebalance-out (default BENCH_rebalance.json). The gate reads the three
// deterministic /virtual rows, bounding the during-migration/quiesced p99
// ratio by -rebalance-ratio (default 4, see bench.CheckRebalance; 0
// disables) BEFORE the file is written.
//
//	go run ./cmd/benchsuite -exp rebalance
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/workloads"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all, table1, fig1, fig2, table2, mapping, futurework, hotpath, recovery, faults, frontends, rebalance")
	factor := flag.Int64("factor", 1024, "divide the paper's byte volumes by this factor")
	chunk := flag.Int("chunk", 4096, "per-call I/O unit in bytes")
	ranks := flag.Int("ranks", 8, "MPI ranks for HPC applications")
	executors := flag.Int("executors", 4, "Spark executors")
	hotpathOut := flag.String("hotpath-out", "BENCH_hotpath.json", "output file for the hotpath experiment")
	hotpathBaseline := flag.String("hotpath-baseline", "", "committed BENCH_hotpath.json to gate write-path allocation regressions against")
	hotpathRatio := flag.Float64("hotpath-ratio", -1,
		"max parallel/serial write ns-per-op ratio gate: <0 picks a GOMAXPROCS-aware default, 0 disables the gate")
	recoveryOut := flag.String("recovery-out", "BENCH_recovery.json", "output file for the recovery experiment")
	recoveryRatio := flag.Float64("recovery-ratio", -1,
		"max parallel/serial recovery ns-per-op ratio gate: <0 picks a GOMAXPROCS-aware default, 0 disables the gate")
	faultsOut := flag.String("faults-out", "BENCH_faults.json", "output file for the faults experiment")
	faultsRatio := flag.Float64("faults-ratio", -1,
		"max degraded/healthy write ns-per-op ratio gate: <0 picks a GOMAXPROCS-aware default, 0 disables the gate")
	frontendsOut := flag.String("frontends-out", "BENCH_frontends.json", "output file for the frontends experiment")
	frontendsRatio := flag.Float64("frontends-ratio", -1,
		"max fastpath/copy rename ns-per-op ratio gate: <0 picks the default (0.95), 0 disables the gate")
	rebalanceOut := flag.String("rebalance-out", "BENCH_rebalance.json", "output file for the rebalance experiment")
	rebalanceRatio := flag.Float64("rebalance-ratio", -1,
		"max during-migration/quiesced foreground p99 ratio gate: <0 picks the default (4), 0 disables the gate")
	flag.Parse()

	// Read the baseline up front: -hotpath-out usually names the same file,
	// and the gate must compare against the committed numbers, not ours.
	var baseline []byte
	if *hotpathBaseline != "" {
		var err error
		if baseline, err = os.ReadFile(*hotpathBaseline); err != nil {
			fmt.Fprintf(os.Stderr, "benchsuite: hotpath baseline: %v\n", err)
			os.Exit(1)
		}
	}

	cfg := workloads.Config{
		Factor:    *factor,
		Chunk:     *chunk,
		Ranks:     *ranks,
		Executors: *executors,
	}

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "benchsuite: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("table1", func() error {
		res, err := bench.RunTableI(cfg)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		fmt.Printf("profiles match the paper: %v\n\n", res.Matches())
		return nil
	})
	run("fig1", func() error {
		res, err := bench.RunFigure1(cfg)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		return nil
	})
	run("fig2", func() error {
		res, err := bench.RunFigure2(cfg)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		return nil
	})
	run("table2", func() error {
		res, err := bench.RunTableII(cfg)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		fmt.Printf("matches the paper's 43/43/5/0: %v\n\n", res.MatchesPaper())
		return nil
	})
	run("mapping", func() error {
		res, err := bench.RunMapping(cfg)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		fmt.Printf("all applications run on blobs with >98%% direct calls: %v\n\n",
			res.AllRunAndMostlyDirect())
		return nil
	})
	run("futurework", func() error {
		res, err := bench.RunFutureWork(bench.FutureWorkOptions{})
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		fmt.Printf("flat-namespace gains hold: %v\n", res.GainsHold())
		return nil
	})
	// The hotpath experiment only runs when requested explicitly: it is the
	// benchcheck target, not part of the paper's evaluation tables.
	if *exp == "hotpath" {
		results, err := bench.RunHotPath()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchsuite: hotpath: %v\n", err)
			os.Exit(1)
		}
		for _, r := range results {
			fmt.Printf("%-30s %10d ns/op %8d B/op %6d allocs/op %10.1f MB/s\n",
				r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp, r.MBPerSec)
		}
		// Gate BEFORE writing -hotpath-out: the two usually name the same
		// file, and a failing run must not clobber the committed baseline —
		// that would make a simple re-run pass against its own regression.
		if baseline != nil {
			if err := bench.CheckHotPathBaseline(results, baseline); err != nil {
				fmt.Fprintf(os.Stderr, "benchsuite: hotpath: %v (baseline left untouched)\n", err)
				os.Exit(1)
			}
			fmt.Printf("write-path allocation gate vs %s: ok\n", *hotpathBaseline)
		}
		if *hotpathRatio != 0 {
			if err := bench.CheckWriteScaling(results, *hotpathRatio); err != nil {
				fmt.Fprintf(os.Stderr, "benchsuite: hotpath: %v (baseline left untouched)\n", err)
				os.Exit(1)
			}
			fmt.Println("parallel/serial write-scaling gate: ok")
		}
		out, err := bench.RenderHotPath(results)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchsuite: hotpath: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*hotpathOut, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchsuite: hotpath: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *hotpathOut)
	}
	// The recovery experiment is the second benchcheck target: the
	// serial-vs-parallel crash-recovery sweep across WAL lane counts and
	// cold-store sizes, gated on the parallel pipeline actually beating
	// (or, without parallel hardware, staying within bounded overhead of)
	// the single-threaded oracle before BENCH_recovery.json is written.
	if *exp == "recovery" {
		results, err := bench.RunRecovery()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchsuite: recovery: %v\n", err)
			os.Exit(1)
		}
		for _, r := range results {
			fmt.Printf("%-45s %10d ns/op %8d B/op %6d allocs/op %10.1f MB/s\n",
				r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp, r.MBPerSec)
		}
		if *recoveryRatio != 0 {
			if err := bench.CheckRecoveryScaling(results, *recoveryRatio); err != nil {
				fmt.Fprintf(os.Stderr, "benchsuite: recovery: %v (output left untouched)\n", err)
				os.Exit(1)
			}
			fmt.Println("parallel/serial recovery-scaling gate: ok")
		}
		out, err := bench.RenderRecovery(results)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchsuite: recovery: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*recoveryOut, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchsuite: recovery: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *recoveryOut)
	}
	// The faults experiment is the third benchcheck target: the cost profile
	// of writing through a failure domain (degraded writes on the live
	// replica subset) and of the rejoin-resync drain, gated on degraded
	// writes never costing more than bounded bookkeeping over healthy ones
	// before BENCH_faults.json is written.
	if *exp == "faults" {
		results, err := bench.RunFaults()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchsuite: faults: %v\n", err)
			os.Exit(1)
		}
		for _, r := range results {
			fmt.Printf("%-35s %10d ns/op %8d B/op %6d allocs/op %10.1f MB/s\n",
				r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp, r.MBPerSec)
		}
		if *faultsRatio != 0 {
			if err := bench.CheckFaults(results, *faultsRatio); err != nil {
				fmt.Fprintf(os.Stderr, "benchsuite: faults: %v (output left untouched)\n", err)
				os.Exit(1)
			}
			fmt.Println("degraded/healthy write-cost gate: ok")
		}
		out, err := bench.RenderFaults(results)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchsuite: faults: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*faultsOut, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchsuite: faults: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *faultsOut)
	}
	// The frontends experiment is the fourth benchcheck target: the three
	// converged access layers (IOR pattern, Sort shuffle, S3 put/get) over
	// one blob data plane, gated on the blobfs rename fast path still
	// beating the client-side copy loop before BENCH_frontends.json is
	// written.
	if *exp == "frontends" {
		results, err := bench.RunFrontends()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchsuite: frontends: %v\n", err)
			os.Exit(1)
		}
		for _, r := range results {
			fmt.Printf("%-40s %12d ns/op %8d B/op %6d allocs/op %10.1f MB/s\n",
				r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp, r.MBPerSec)
		}
		if *frontendsRatio != 0 {
			if err := bench.CheckFrontends(results, *frontendsRatio); err != nil {
				fmt.Fprintf(os.Stderr, "benchsuite: frontends: %v (output left untouched)\n", err)
				os.Exit(1)
			}
			fmt.Println("rename fastpath/copy gate: ok")
		}
		out, err := bench.RenderFrontends(results)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchsuite: frontends: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*frontendsOut, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchsuite: frontends: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *frontendsOut)
	}
	// The rebalance experiment is the fifth benchcheck target: foreground
	// p99 latency during a live join/drain against the quiesced baseline,
	// gated on the throttled, batched migration sweep never costing the
	// foreground more than bounded contention before BENCH_rebalance.json
	// is written.
	if *exp == "rebalance" {
		results, err := bench.RunRebalance()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchsuite: rebalance: %v\n", err)
			os.Exit(1)
		}
		for _, r := range results {
			fmt.Printf("%-48s %12d ns/op %8d B/op %6d allocs/op\n",
				r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
		}
		if *rebalanceRatio != 0 {
			if err := bench.CheckRebalance(results, *rebalanceRatio); err != nil {
				fmt.Fprintf(os.Stderr, "benchsuite: rebalance: %v (output left untouched)\n", err)
				os.Exit(1)
			}
			fmt.Println("migration/quiesced foreground-p99 gate: ok")
		}
		out, err := bench.RenderRebalance(results)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchsuite: rebalance: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*rebalanceOut, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchsuite: rebalance: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *rebalanceOut)
	}
}
