// Command benchsuite regenerates every table and figure of the paper's
// evaluation section, plus the Section III mapping analysis and the
// Section V future-work experiment.
//
// Usage:
//
//	benchsuite [-exp all|table1|fig1|fig2|table2|mapping|futurework]
//	           [-factor N] [-chunk N] [-ranks N] [-executors N]
//
// The default factor 1024 scales the paper's GB volumes to MB; the chunk
// scales the per-call I/O unit accordingly (see internal/workloads).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/workloads"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all, table1, fig1, fig2, table2, mapping, futurework")
	factor := flag.Int64("factor", 1024, "divide the paper's byte volumes by this factor")
	chunk := flag.Int("chunk", 4096, "per-call I/O unit in bytes")
	ranks := flag.Int("ranks", 8, "MPI ranks for HPC applications")
	executors := flag.Int("executors", 4, "Spark executors")
	flag.Parse()

	cfg := workloads.Config{
		Factor:    *factor,
		Chunk:     *chunk,
		Ranks:     *ranks,
		Executors: *executors,
	}

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "benchsuite: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("table1", func() error {
		res, err := bench.RunTableI(cfg)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		fmt.Printf("profiles match the paper: %v\n\n", res.Matches())
		return nil
	})
	run("fig1", func() error {
		res, err := bench.RunFigure1(cfg)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		return nil
	})
	run("fig2", func() error {
		res, err := bench.RunFigure2(cfg)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		return nil
	})
	run("table2", func() error {
		res, err := bench.RunTableII(cfg)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		fmt.Printf("matches the paper's 43/43/5/0: %v\n\n", res.MatchesPaper())
		return nil
	})
	run("mapping", func() error {
		res, err := bench.RunMapping(cfg)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		fmt.Printf("all applications run on blobs with >98%% direct calls: %v\n\n",
			res.AllRunAndMostlyDirect())
		return nil
	})
	run("futurework", func() error {
		res, err := bench.RunFutureWork(bench.FutureWorkOptions{})
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		fmt.Printf("flat-namespace gains hold: %v\n", res.GainsHold())
		return nil
	})
}
