// Command iorbench runs the IOR-style parallel I/O benchmark against one
// or all storage backends, printing IOR-flavoured bandwidth summaries in
// virtual (simulated-cluster) time. It is the free-form companion to the
// fixed experiments of cmd/benchsuite — use it to explore where the flat
// namespace wins or loses under arbitrary access shapes.
//
// Usage:
//
//	iorbench [-backend posix|relaxed|blob|all] [-clients N] [-transfer N]
//	         [-block N] [-segments N] [-shared] [-noread]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/blob"
	"repro/internal/blobfs"
	"repro/internal/cluster"
	"repro/internal/fs/posixfs"
	"repro/internal/fs/relaxedfs"
	"repro/internal/ior"
	"repro/internal/storage"
)

func main() {
	backend := flag.String("backend", "all", "posix, relaxed, blob, or all")
	clients := flag.Int("clients", 8, "concurrent client processes")
	transfer := flag.Int("transfer", 64<<10, "bytes per I/O call")
	block := flag.Int("block", 1<<20, "contiguous bytes per client per segment")
	segments := flag.Int("segments", 4, "segment count")
	shared := flag.Bool("shared", false, "one shared file instead of file-per-process")
	noread := flag.Bool("noread", false, "skip the verified read-back phase")
	flag.Parse()

	params := ior.Params{
		Clients:      *clients,
		TransferSize: *transfer,
		BlockSize:    *block,
		Segments:     *segments,
		SharedFile:   *shared,
		ReadBack:     !*noread,
	}

	backends := []string{*backend}
	if *backend == "all" {
		backends = []string{"posix", "relaxed", "blob"}
	}
	for _, name := range backends {
		fs, err := newBackend(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "iorbench: %v\n", err)
			os.Exit(2)
		}
		if err := fs.Mkdir(storage.NewContext(), "/ior"); err != nil {
			fmt.Fprintf(os.Stderr, "iorbench: mkdir /ior on %s: %v\n", name, err)
			os.Exit(1)
		}
		res, err := ior.Run(fs, params)
		if err != nil {
			// Semantic envelope misses (e.g. shared-file on relaxedfs) are
			// findings, not failures, when sweeping all backends.
			if *backend == "all" {
				fmt.Printf("%-8s %s\n", name+":", "unsupported: "+err.Error())
				continue
			}
			fmt.Fprintf(os.Stderr, "iorbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("%-8s %s\n", name+":", res)
	}
}

func newBackend(kind string) (storage.FileSystem, error) {
	c := cluster.New(cluster.Config{Nodes: 9, Seed: 1})
	switch kind {
	case "posix":
		return posixfs.NewStrict(c), nil
	case "relaxed":
		return relaxedfs.New(c, relaxedfs.Config{BlockSize: 4 << 20}), nil
	case "blob":
		return blobfs.New(blob.New(c, blob.Config{ChunkSize: 4 << 20, Replication: 1})), nil
	default:
		return nil, fmt.Errorf("unknown backend %q", kind)
	}
}
